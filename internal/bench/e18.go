package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/audit"
	"trustedcvs/internal/backoff"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/driver"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/wal"
)

// E18 is the crash matrix for the durable audit pipeline: epoch-audit
// clients journaling every obligation (driver.NewP2EpochWAL) are
// killed at four points of the epoch lifecycle — mid-epoch,
// exactly at an epoch boundary, with a seal in flight, and during a
// post-checkpoint journal truncation (a fault-scheduled crash between
// the cursor write and the segment unlink) — each in an honest run and
// in a tamper-before-crash run where the server corrupts an answer
// whose optimistic release beats the crash, so the tampered bytes
// exist only in the victim's journal. Three claims are under test:
//
//  1. Conviction survives the crash: every tampered cell must convict
//     after recovery, from journal replay alone — the exposure window
//     closes across the restart.
//  2. Zero loss, zero noise: every honest cell must replay exactly the
//     obligations the kill left unverified (replayed == journaled past
//     the cursor — nothing submitted is lost), finish its workload,
//     seal, and close every epoch with zero false alarms.
//  3. Recovery is bounded: replay re-verification finishes within the
//     budget, not proportional to pre-crash history (the cursor
//     truncates what closed epochs already covered).
//
// The tamper-before-crash cells plant the record the way a real crash
// loses the race: the (adversarial) server tampers the answer of one
// extra transport call, and the record is appended to the dead
// client's journal exactly as its Submit would have — answer released,
// auditor never ran. The live auditor path cannot lose this race
// deterministically (its worker races the kill), so the cell pins the
// worst case by construction.

// E18Config parameterizes RunE18.
type E18Config struct {
	// EpochLen is the audit epoch length in global operations.
	EpochLen uint64
	// ReplayBudget bounds each cell's recovery: restart-to-reverified
	// (honest) or restart-to-conviction (tampered).
	ReplayBudget time.Duration
}

// DefaultE18Config is what cmd/tcvs-bench runs.
func DefaultE18Config() E18Config {
	return E18Config{EpochLen: 8, ReplayBudget: 30 * time.Second}
}

// E18Cell is one (crash point, tampered?) cell of the matrix.
type E18Cell struct {
	CrashPoint string `json:"crash_point"`
	Tampered   bool   `json:"tampered"`
	// TriggerOp is the global op whose answer the server tampered
	// (tampered cells only).
	TriggerOp uint64 `json:"trigger_op,omitempty"`
	// SubmittedAtKill counts obligations whose answers were released
	// before the kill, summed over both clients.
	SubmittedAtKill uint64 `json:"submitted_at_kill"`
	// CursorEpochs records each client's durable cursor at the kill
	// (-1 = no epoch durably closed).
	CursorEpochs []int64 `json:"cursor_epochs"`
	// ExpectedReplay counts journal frames past the cursors — the
	// obligations recovery must re-verify; Replayed is what the
	// restarted auditors actually replayed.
	ExpectedReplay int    `json:"expected_replay"`
	Replayed       uint64 `json:"replayed"`
	ZeroLoss       bool   `json:"zero_loss"`
	// ReplayMillis is restart-to-reverified (honest) or
	// restart-to-conviction (tampered).
	ReplayMillis float64 `json:"replay_ms"`
	Detected     bool    `json:"detected,omitempty"`
	Class        string  `json:"class,omitempty"`
	FailEpoch    uint64  `json:"fail_epoch,omitempty"`
	// Degraded reports the degrade-to-sync flip (during-truncate: the
	// fault-scheduled remove crash must flip it).
	Degraded    bool `json:"degraded,omitempty"`
	FalseAlarms int  `json:"false_alarms"`
}

// E18Data is the full matrix, serialized to BENCH_E18.json.
type E18Data struct {
	Users                int       `json:"users"`
	EpochLen             uint64    `json:"epoch_len"`
	ReplayBudgetMillis   float64   `json:"replay_budget_ms"`
	Cells                []E18Cell `json:"cells"`
	AllTamperedConvicted bool      `json:"all_tampered_convicted"`
	ZeroLoss             bool      `json:"zero_loss"`
	FalseAlarms          int       `json:"false_alarms"`
	MaxReplayMillis      float64   `json:"max_replay_ms"`
}

// WriteJSON writes the result in the checked-in BENCH_E18.json format.
func (d *E18Data) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// e18Point is one crash point's choreography.
type e18Point struct {
	name    string
	preOps  int  // sequential global ops before the kill
	postOps int  // ops after restart (honest cells)
	sealOne bool // put client 0's seal in flight before the kill
	truncFS bool // fault-schedule a crash at the first journal unlink
}

func e18Points(epochLen uint64) []e18Point {
	n := int(epochLen)
	return []e18Point{
		// Epoch 0 closed, half of epoch 1's obligations only in journals.
		{name: "mid-epoch", preOps: n + n/2, postOps: 4},
		// Killed exactly on epoch 1's last op: a full epoch of
		// obligations journaled but unclosable until after restart.
		{name: "at-boundary", preOps: 2 * n, postOps: 4},
		// Client 0's seal is in flight when both die; seals are never
		// journaled, so recovery must re-seal on its own schedule.
		{name: "during-seal", preOps: n + 2, postOps: 2, sealOne: true},
		// The checkpoint wrote its cursor, then the segment unlink hit a
		// scheduled crash: stale-but-checksummed frames survive for
		// replay to skip, and the auditor must flip to degrade-to-sync.
		{name: "during-truncate", preOps: n + 2, postOps: 4, truncFS: true},
	}
}

// e18AwaitEpochs polls until the client's auditor has closed n epochs.
func e18AwaitEpochs(dc *driver.Client, n uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	poll := backoff.Poll(time.Millisecond)
	for dc.Audit().Completed() < n {
		if err := dc.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("E18: %d/%d epochs closed before deadline", dc.Audit().Completed(), n)
		}
		poll.Sleep()
	}
	return nil
}

// e18ExpectedReplay reads one dead client's journal the way recovery
// will: its durable cursor plus every frame past it.
func e18ExpectedReplay(dir string) (cursor int64, frames int, err error) {
	cur, err := audit.LoadCursor(dir)
	if err != nil {
		return 0, 0, err
	}
	cursor = -1
	if cur != nil {
		cursor = cur.Epoch
	}
	err = wal.Replay(dir, func(fr wal.Record) error {
		if int64(fr.Epoch) > cursor {
			frames++
		}
		return nil
	})
	return cursor, frames, err
}

// e18Plant issues one extra transport call — whose answer the
// adversary tampers — and appends the obligation to the dead client's
// journal exactly as its Submit would have: the answer was released,
// the crash won the race to the auditor.
func e18Plant(addr, dir string, g, epochLen uint64) error {
	conn, err := transport.Dial(addr)
	if err != nil {
		return err
	}
	op := &vdb.WriteOp{Puts: []vdb.KV{{Key: "e18-planted", Val: []byte("v")}}}
	raw, err := conn.Call(&core.OpRequest{User: 0, Op: op})
	if err != nil {
		return err
	}
	resp, ok := raw.(*core.OpResponseII)
	if !ok {
		return fmt.Errorf("E18: bad planted response type %T", raw)
	}
	if want := g - 1; resp.Ctr != want {
		return fmt.Errorf("E18: planted op landed on ctr %d, want %d", resp.Ctr, want)
	}
	return audit.AppendRaw(dir, audit.Record{Op: op, Resp: resp}, (g-1)/epochLen)
}

// e18Cell runs one cell of the matrix.
func e18Cell(pt e18Point, tampered bool, cfg E18Config) (E18Cell, error) {
	const users = 2
	epochLen := cfg.EpochLen
	cell := E18Cell{CrashPoint: pt.name, Tampered: tampered}

	root, err := os.MkdirTemp("", "tcvs-e18-")
	if err != nil {
		return cell, err
	}
	defer os.RemoveAll(root)
	userDir := func(i int) string { return filepath.Join(root, fmt.Sprintf("user-%d", i)) }

	db := vdb.New(0)
	var srv server.Server = server.NewP2(db)
	plantG := uint64(pt.preOps) + 1
	if tampered {
		cell.TriggerOp = plantG
		srv = adversary.Wrap(srv, adversary.Config{Kind: adversary.TamperAnswer, TriggerOp: plantG})
	}
	ts, err := transport.ListenOpts("127.0.0.1:0", driver.NewHandler(srv, cvs.NewStore()),
		transport.Options{IdleTimeout: -1})
	if err != nil {
		return cell, err
	}
	defer ts.Close()
	hub, err := broadcast.ListenHub("127.0.0.1:0")
	if err != nil {
		return cell, err
	}
	defer hub.Close()

	var ffs *fault.FaultyFS
	if pt.truncFS {
		ffs = &fault.FaultyFS{CrashAtRemove: 1}
	}
	// start dials a client; faulty routes its journal through the
	// fault-scheduled filesystem (first incarnation only — the restart
	// gets a healthy disk, as after a real reboot).
	start := func(i int, faulty bool) (*driver.Client, error) {
		conn, err := transport.Dial(ts.Addr())
		if err != nil {
			return nil, err
		}
		var fs fault.FS
		if faulty && i == 0 {
			fs = ffs
		}
		u := proto2.NewUser(sig.UserID(i), db.Root(), 1<<62)
		return driver.NewP2EpochWAL(u, conn, broadcast.DialHubResume(hub.Addr()),
			users, epochLen, 0, userDir(i), fs)
	}

	// Phase 1: the doomed deployment. Sequential alternating ops keep
	// the global counter assignment deterministic.
	cs := make([]*driver.Client, users)
	for i := range cs {
		if cs[i], err = start(i, pt.truncFS); err != nil {
			return cell, err
		}
	}
	for j := 0; j < pt.preOps; j++ {
		if _, err := cs[j%users].Do(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("e18-%d", j), Val: []byte("v")}}}); err != nil {
			return cell, fmt.Errorf("E18 %s pre-op %d: %w", pt.name, j, err)
		}
	}
	for _, dc := range cs {
		if err := e18AwaitEpochs(dc, 1, 30*time.Second); err != nil {
			return cell, fmt.Errorf("E18 %s: %w", pt.name, err)
		}
		if err := dc.WaitAudited(30 * time.Second); err != nil {
			return cell, fmt.Errorf("E18 %s drain: %w", pt.name, err)
		}
	}
	if pt.sealOne {
		cs[0].Seal() // in flight at the kill; never journaled
	}
	for _, dc := range cs {
		if dc.Err() != nil {
			cell.FalseAlarms++
		}
		cell.SubmittedAtKill += dc.Audit().Stats().Submitted
	}
	// Kill. Stop drops the unverified queue on the floor — the journal
	// is the only survivor, exactly as in a real crash.
	for _, dc := range cs {
		dc.Close()
	}
	if pt.truncFS {
		if !ffs.Crashed() {
			return cell, fmt.Errorf("E18 %s: scheduled truncation crash never fired", pt.name)
		}
		cell.Degraded = cs[0].Audit().Stats().Durability == audit.DurabilityDegradedSync
		if !cell.Degraded {
			return cell, fmt.Errorf("E18 %s: journal death did not flip degrade-to-sync", pt.name)
		}
	}
	if tampered {
		if err := e18Plant(ts.Addr(), userDir(0), plantG, epochLen); err != nil {
			return cell, fmt.Errorf("E18 %s plant: %w", pt.name, err)
		}
	}
	for i := 0; i < users; i++ {
		cur, frames, err := e18ExpectedReplay(userDir(i))
		if err != nil {
			return cell, fmt.Errorf("E18 %s journal %d: %w", pt.name, i, err)
		}
		cell.CursorEpochs = append(cell.CursorEpochs, cur)
		cell.ExpectedReplay += frames
	}

	// Phase 2: recovery.
	t0 := time.Now()
	if tampered {
		// Only the victim restarts: conviction must come from its own
		// journal replay, no peer help.
		dc, err := start(0, false)
		if err != nil {
			return cell, fmt.Errorf("E18 %s restart: %w", pt.name, err)
		}
		defer dc.Close()
		deadline := time.Now().Add(cfg.ReplayBudget)
		poll := backoff.Poll(time.Millisecond)
		for dc.Audit().Err() == nil {
			if time.Now().After(deadline) {
				return cell, fmt.Errorf("E18 %s: tampered record not convicted within the replay budget", pt.name)
			}
			poll.Sleep()
		}
		cell.ReplayMillis = float64(time.Since(t0)) / float64(time.Millisecond)
		cell.Detected = true
		var eaf *audit.EpochAuditFailure
		if errors.As(dc.Audit().Err(), &eaf) {
			cell.FailEpoch = eaf.Epoch
		}
		if de, ok := core.AsDetection(dc.Audit().Err()); ok {
			cell.Class = de.Class.String()
		}
		cell.Replayed = dc.Audit().Stats().Replayed
		cell.ZeroLoss = true // conviction supersedes the replay count
		return cell, nil
	}

	// Honest: restart both, re-verify exactly the journaled tail, then
	// finish the workload and close every epoch.
	for i := range cs {
		if cs[i], err = start(i, false); err != nil {
			return cell, fmt.Errorf("E18 %s restart: %w", pt.name, err)
		}
	}
	defer func() {
		for _, dc := range cs {
			dc.Close()
		}
	}()
	deadline := time.Now().Add(cfg.ReplayBudget)
	poll := backoff.Poll(time.Millisecond)
	for {
		var replayed uint64
		for _, dc := range cs {
			replayed += dc.Audit().Stats().Replayed
		}
		cell.Replayed = replayed
		if replayed >= uint64(cell.ExpectedReplay) {
			break
		}
		if time.Now().After(deadline) {
			return cell, fmt.Errorf("E18 %s: replayed %d of %d journaled obligations within the budget",
				pt.name, replayed, cell.ExpectedReplay)
		}
		poll.Sleep()
	}
	for _, dc := range cs {
		if err := dc.WaitAudited(cfg.ReplayBudget); err != nil {
			cell.FalseAlarms++
		}
	}
	cell.ReplayMillis = float64(time.Since(t0)) / float64(time.Millisecond)
	cell.ZeroLoss = cell.Replayed == uint64(cell.ExpectedReplay)

	for j := 0; j < pt.postOps; j++ {
		if _, err := cs[j%users].Do(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("e18-post-%d", j), Val: []byte("v")}}}); err != nil {
			cell.FalseAlarms++
			return cell, nil
		}
	}
	for _, dc := range cs {
		dc.Seal()
	}
	for _, dc := range cs {
		if err := dc.WaitSealed(cfg.ReplayBudget); err != nil {
			cell.FalseAlarms++
		}
	}
	return cell, nil
}

// RunE18 runs the full crash matrix.
func RunE18(cfg E18Config) (*E18Data, error) {
	d := &E18Data{
		Users: 2, EpochLen: cfg.EpochLen,
		ReplayBudgetMillis:   float64(cfg.ReplayBudget) / float64(time.Millisecond),
		AllTamperedConvicted: true, ZeroLoss: true,
	}
	for _, pt := range e18Points(cfg.EpochLen) {
		for _, tampered := range []bool{false, true} {
			cell, err := e18Cell(pt, tampered, cfg)
			if err != nil {
				return nil, err
			}
			d.Cells = append(d.Cells, cell)
			d.FalseAlarms += cell.FalseAlarms
			if tampered {
				d.AllTamperedConvicted = d.AllTamperedConvicted && cell.Detected
			} else {
				d.ZeroLoss = d.ZeroLoss && cell.ZeroLoss
			}
			if cell.ReplayMillis > d.MaxReplayMillis {
				d.MaxReplayMillis = cell.ReplayMillis
			}
		}
	}
	return d, nil
}

// E18 runs the matrix with the default configuration and renders it.
func E18() *Table {
	d, err := RunE18(DefaultE18Config())
	if err != nil {
		panic(err)
	}
	return d.Table()
}

// Table renders the data as the E18 exhibit.
func (d *E18Data) Table() *Table {
	t := &Table{
		ID:       "E18",
		Title:    "Crash-durable audit: WAL replay closes the exposure window across kill/restart",
		PaperRef: "Section 2.2.1's detection guarantee held across crashes; AUDIT.md \"Durability & recovery\"",
		Columns:  []string{"crash-point", "tampered", "submitted", "journaled-tail", "replayed", "zero-loss", "replay-ms", "convicted", "class", "alarms"},
	}
	for _, c := range d.Cells {
		convicted := "-"
		if c.Tampered {
			convicted = boolMark(c.Detected)
		}
		t.AddRow(c.CrashPoint, boolMark(c.Tampered), c.SubmittedAtKill, c.ExpectedReplay, c.Replayed,
			boolMark(c.ZeroLoss), fmt.Sprintf("%.0f", c.ReplayMillis), convicted, c.Class, c.FalseAlarms)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("every tamper-before-crash cell convicted from journal replay alone: %v; false alarms across all honest cells: %d", d.AllTamperedConvicted, d.FalseAlarms),
		fmt.Sprintf("zero loss: restarted auditors replayed exactly the obligations journaled past the durable cursor in every honest cell: %v", d.ZeroLoss),
		fmt.Sprintf("recovery bounded: max restart-to-reverified %4.0f ms against a %.0f ms budget; closed epochs are cursor-truncated, so replay scales with the open tail, not history", d.MaxReplayMillis, d.ReplayBudgetMillis))
	return t
}
