package bench

import "testing"

// TestRunE17Small drives the epoch-audit experiment end to end at a
// size a CI box can afford: both modes must finish every honest point
// with zero false alarms, and every adversary trial must land a typed
// conviction within one epoch of first deviation. The headline
// speedup is machine-dependent and recorded by tcvs-bench, not
// asserted here.
func TestRunE17Small(t *testing.T) {
	cfg := DefaultE17Config()
	cfg.DBSize = 100
	cfg.OpsPerClient = 16
	cfg.EpochFactor = 4
	cfg.ClientCounts = []int{2, 4}
	cfg.DetectEpochLen = 12
	d, err := RunE17(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(cfg.ClientCounts); len(d.Points) != want {
		t.Fatalf("got %d points, want %d", len(d.Points), want)
	}
	for _, pt := range d.Points {
		if pt.Ops != pt.Clients*cfg.OpsPerClient {
			t.Errorf("%s/%d: delivered %d ops, want %d", pt.Mode, pt.Clients, pt.Ops, pt.Clients*cfg.OpsPerClient)
		}
		if pt.OpsPerSec <= 0 || pt.AnswerOpsPerSec < pt.OpsPerSec {
			t.Errorf("%s/%d: throughput answered=%v verified=%v", pt.Mode, pt.Clients, pt.AnswerOpsPerSec, pt.OpsPerSec)
		}
		if pt.FalseAlarms != 0 {
			t.Errorf("%s/%d: %d false alarms on an honest run", pt.Mode, pt.Clients, pt.FalseAlarms)
		}
		if pt.Mode == "epoch" {
			if pt.QueueCap == 0 || pt.EpochsClosed == 0 {
				t.Errorf("%s/%d: missing queue/epoch accounting: %+v", pt.Mode, pt.Clients, pt)
			}
		}
	}
	if len(d.Trials) != 7 {
		t.Fatalf("got %d trials, want 7", len(d.Trials))
	}
	if !d.AllDetected || !d.AllWithinOneEpoch {
		t.Fatalf("detection bound violated: %+v", d.Trials)
	}
	for _, tr := range d.Trials {
		if tr.Class == "" {
			t.Errorf("%s@%d: untyped conviction", tr.Behavior, tr.TriggerOp)
		}
	}
}
