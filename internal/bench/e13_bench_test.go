package bench

import "testing"

// BenchmarkE13 exposes the E13 measurement to `go test -bench`: each
// sub-benchmark runs one scheme with 16 concurrent TCP clients and
// b.N total operations. The interesting output is the ops/s metric;
// compare P2 against P2-seed for the pipelined-vs-seed speedup (the
// full sweep with latency percentiles is `tcvs-bench -e E13`).
func BenchmarkE13(b *testing.B) {
	for _, s := range e13Schemes() {
		b.Run(s.name+"/c=16", func(b *testing.B) {
			const clients = 16
			total := b.N
			if total < clients {
				total = clients
			}
			results, elapsed, err := e13Run(s, 1000, clients, total)
			if err != nil {
				b.Fatal(err)
			}
			ops := 0
			for _, r := range results {
				ops += len(r.lats)
			}
			b.ReportMetric(float64(ops)/elapsed.Seconds(), "ops/s")
		})
	}
}
