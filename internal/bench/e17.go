package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/audit"
	"trustedcvs/internal/backoff"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/driver"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/witness"
)

// E17 measures the epoch-batched asynchronous audit: operations return
// optimistically with their VO attached and a background auditor
// verifies them in batches, driving the closure check once per epoch
// of N global operations instead of once per sync round. Two claims
// are under test:
//
//  1. Throughput: taking verification off the hot path buys real
//     closed-loop throughput against the same full deployment (TCP
//     transport, broadcast hub, witness quorum) running the per-round
//     sync barrier — and the answer-to-verified gap is exactly the
//     audit drain, which the queue statistics account for. The
//     acceptance number is verified epoch-audit throughput over
//     sync-mode throughput at the largest client count, drain
//     included: nothing is counted until the final closure check has
//     covered it.
//
//  2. Detection: the weakening is bounded. Sync mode convicts a lying
//     server before the next operation; epoch mode convicts within
//     one epoch — the paper's k-bounded deviation made concrete with
//     k = one epoch of operations. The adversary suite (Fork at
//     several phases of the epoch grid, TornCommit against the
//     forest, a diverging witness commitment) reruns under the async
//     auditor, and every trial must land a *typed* detection whose
//     failure epoch is at most one past the epoch the server first
//     deviated in. Zero false alarms tolerated on the honest runs.

// E17Config parameterizes RunE17.
type E17Config struct {
	// DBSize is the number of preloaded keys.
	DBSize int
	// OpsPerClient is each client's closed-loop workload.
	OpsPerClient int
	// SyncK is sync mode's sync period (a barrier round every K of a
	// user's own ops).
	SyncK uint64
	// EpochFactor scales the epoch length: N = EpochFactor * clients,
	// so the epoch count stays fixed across population sizes.
	EpochFactor uint64
	// Queue is the audit queue capacity (0 = audit.DefaultQueue).
	Queue int
	// Witnesses is the witness population for phase 1.
	Witnesses int
	// ClientCounts are the population sizes to measure.
	ClientCounts []int
	// DetectUsers and DetectEpochLen shape the phase-2 adversary
	// trials.
	DetectUsers    int
	DetectEpochLen uint64
}

// DefaultE17Config is what E17() and cmd/tcvs-bench run.
func DefaultE17Config() E17Config {
	return E17Config{
		DBSize: 500, OpsPerClient: 48, SyncK: 16, EpochFactor: 16,
		Witnesses: 3, ClientCounts: []int{4, 16, 64},
		DetectUsers: 3, DetectEpochLen: 24,
	}
}

// E17Point is one measured (mode, client count) cell of phase 1.
type E17Point struct {
	Mode     string `json:"mode"`
	Clients  int    `json:"clients"`
	EpochLen uint64 `json:"epoch_len,omitempty"`
	Ops      int    `json:"ops"`
	// AnswerOpsPerSec is the optimistic answer rate (hot path only);
	// OpsPerSec is the verified rate with the audit drain — seal and
	// final closure included — charged to the denominator. For sync
	// mode the two differ only by the residual barrier flush.
	AnswerOpsPerSec float64 `json:"answer_ops_per_sec"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	DrainMillis     float64 `json:"drain_ms"`
	P50Micros       float64 `json:"p50_us"`
	P99Micros       float64 `json:"p99_us"`
	// Queue accounting (epoch mode only): the high-water mark against
	// capacity is the occupancy headroom, Degraded counts submissions
	// that found the queue full and fell back to a blocking (sync-like)
	// hand-off, MaxBatch is the deepest drain the worker amortized over.
	QueueCap       int    `json:"queue_cap,omitempty"`
	QueueHighWater int    `json:"queue_high_water,omitempty"`
	QueueDegraded  uint64 `json:"queue_degraded,omitempty"`
	MaxBatch       int    `json:"max_batch,omitempty"`
	EpochsClosed   uint64 `json:"epochs_closed,omitempty"`
	FalseAlarms    int    `json:"false_alarms"`
	NoQuorumSkips  uint64 `json:"no_quorum_skips"`
}

// E17Trial is one phase-2 adversary conviction.
type E17Trial struct {
	Behavior     string `json:"behavior"`
	TriggerOp    uint64 `json:"trigger_op"`
	DeviatedAtOp uint64 `json:"deviated_at_op"`
	EpochLen     uint64 `json:"epoch_len"`
	Detected     bool   `json:"detected"`
	Class        string `json:"class"`
	FailEpoch    uint64 `json:"fail_epoch"`
	// DetectLatencyOps is the exposure window in global operations:
	// for a mid-epoch conviction, the convicted counter minus the
	// deviation op; for a closure conviction, the end of the failed
	// epoch minus the deviation op (the k-bound realized).
	DetectLatencyOps uint64 `json:"detect_latency_ops"`
	WithinOneEpoch   bool   `json:"within_one_epoch"`
}

// E17Data is the full experiment result, serialized to BENCH_E17.json
// by cmd/tcvs-bench.
type E17Data struct {
	DBSize       int        `json:"db_size"`
	OpsPerClient int        `json:"ops_per_client"`
	SyncK        uint64     `json:"sync_k"`
	EpochFactor  uint64     `json:"epoch_factor"`
	Witnesses    int        `json:"witnesses"`
	Points       []E17Point `json:"points"`
	// EpochSpeedupAtMax is verified epoch-audit throughput over sync
	// throughput at the largest client count — the acceptance number.
	EpochSpeedupAtMax float64    `json:"epoch_speedup_at_max"`
	FalseAlarms       int        `json:"false_alarms"`
	Trials            []E17Trial `json:"trials"`
	AllDetected       bool       `json:"all_detected"`
	AllWithinOneEpoch bool       `json:"all_within_one_epoch"`
	MaxDetectLatency  uint64     `json:"max_detect_latency_ops"`
}

// WriteJSON writes the result in the checked-in BENCH_E17.json format.
func (d *E17Data) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// e17Cluster is one full Protocol II deployment: server behind TCP
// with a witness publisher hooked in, an in-process broadcast hub, n
// driver clients in either sync or epoch-audit mode, each
// cross-checking the same in-process witness set.
type e17Cluster struct {
	ts      *transport.Server
	hub     *broadcast.HubServer
	clients []*driver.Client
	pub     *witness.Publisher
	db      *vdb.DB
	once    sync.Once
}

func (c *e17Cluster) close() {
	c.once.Do(func() {
		for _, cl := range c.clients {
			cl.Close()
		}
		if c.hub != nil {
			c.hub.Close()
		}
		if c.ts != nil {
			c.ts.Close()
		}
	})
}

// newE17Cluster deploys hs (already wrapped with any adversary) for n
// clients. epochLen == 0 selects sync mode with period k; otherwise
// epoch-audit mode. witnesses == 0 skips the witness layer; pubEvery
// overrides the publisher's commit cadence (0 = the mode's natural
// cadence: the sync period, or the aligned epoch grid).
func newE17Cluster(hs server.Server, n int, k, epochLen uint64, queue, witnesses int, pubEvery uint64) (*e17Cluster, error) {
	c := &e17Cluster{db: hs.DB()}
	var wid *witness.Identity
	var nodes []*witness.Node
	srv := hs
	if witnesses > 0 {
		var err error
		wid, err = witness.NewIdentity("primary")
		if err != nil {
			return nil, err
		}
		every := k
		if epochLen > 0 {
			every = epochLen
		}
		if pubEvery > 0 {
			every = pubEvery
		}
		c.pub = witness.NewPublisher(wid, every)
		if pubEvery == 0 && epochLen > 0 {
			c.pub.Align()
		}
		for i := 0; i < witnesses; i++ {
			nd := witness.NewNode(fmt.Sprintf("w%d", i), 0)
			nd.Pin("primary", wid.Public())
			c.pub.AddWitness(nd.Name(), inprocWitness(nd))
			nodes = append(nodes, nd)
		}
		srv = server.WithOpHook(hs, c.pub.OpApplied)
	}
	// No idle timeout: a sync-mode client parks its server connection
	// for the whole barrier wait, which at the largest population on a
	// small machine can exceed any reasonable production idle bound —
	// severing it mid-wait would abort the measurement, not protect it.
	ts, err := transport.ListenOpts("127.0.0.1:0", driver.NewHandler(srv, cvs.NewStore()),
		transport.Options{IdleTimeout: -1})
	if err != nil {
		return nil, err
	}
	c.ts = ts
	// TCP hub with resumable subscribers: under 64 concurrent sync
	// clients the report fan-out bursts past any fixed in-process
	// buffer; the wire hub's replay log turns that into recovery
	// instead of a lost-delivery failure.
	hub, err := broadcast.ListenHub("127.0.0.1:0")
	if err != nil {
		c.close()
		return nil, err
	}
	c.hub = hub
	root := c.db.Root()
	roots := c.db.ShardRoots()
	forest := c.db.Shards() > 1
	for i := 0; i < n; i++ {
		conn, err := transport.Dial(ts.Addr())
		if err != nil {
			c.close()
			return nil, err
		}
		var u *proto2.User
		userK := k
		if epochLen > 0 {
			userK = 1 << 62 // sync scheduling is the auditor's job now
		}
		if forest {
			u = proto2.NewForestUser(sig.UserID(i), roots, userK)
		} else {
			u = proto2.NewUser(sig.UserID(i), root, userK)
		}
		var dc *driver.Client
		if epochLen > 0 {
			dc, err = driver.NewP2Epoch(u, conn, broadcast.DialHubResume(c.hub.Addr()), n, epochLen, queue)
			if err != nil {
				c.close()
				return nil, err
			}
		} else {
			dc = driver.NewP2(u, conn, broadcast.DialHubResume(c.hub.Addr()), n)
		}
		if witnesses > 0 {
			chk := witness.NewCheck("primary", wid.Public(), 0)
			for _, nd := range nodes {
				chk.AddWitness(nd.Name(), inprocWitness(nd))
			}
			if epochLen > 0 && 4*epochLen > uint64(witness.DefaultCheckWindow) {
				chk.SetWindow(int(4 * epochLen))
			}
			dc.SetWitnessCheck(chk)
		}
		c.clients = append(c.clients, dc)
	}
	return c, nil
}

// e17Point runs one closed-loop phase-1 cell.
func e17Point(mode string, cfg E17Config, n int) (E17Point, error) {
	epochLen := uint64(0)
	if mode == "epoch" {
		epochLen = cfg.EpochFactor * uint64(n)
	}
	db := seedDB(cfg.DBSize)
	cl, err := newE17Cluster(server.NewP2(db), n, cfg.SyncK, epochLen, cfg.Queue, cfg.Witnesses, 0)
	if err != nil {
		return E17Point{}, err
	}
	defer cl.close()

	lats := make([][]time.Duration, n)
	errs := make([]error, n)
	runtime.GC()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < cfg.OpsPerClient; j++ {
				t0 := time.Now()
				op := benchOp(id*100003+j, cfg.DBSize)
				if _, err := cl.clients[id].Do(op); err != nil {
					errs[id] = fmt.Errorf("client %d op %d: %w", id, j, err)
					return
				}
				lats[id] = append(lats[id], time.Since(t0))
			}
			// Epoch mode: a finished client must seal or peers stall at
			// admission waiting for its boundary reports.
			if epochLen > 0 {
				cl.clients[id].Seal()
			}
		}(i)
	}
	wg.Wait()
	hot := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return E17Point{}, err
		}
	}
	pt := E17Point{Mode: mode, Clients: n, EpochLen: epochLen, Ops: n * cfg.OpsPerClient}
	// Drain: nothing counts as verified until the auditors (or the
	// residual sync rounds) have covered every answered op.
	for _, dc := range cl.clients {
		var derr error
		if epochLen > 0 {
			derr = dc.WaitSealed(120 * time.Second)
		} else {
			derr = dc.WaitIdle(120 * time.Second)
		}
		if derr != nil {
			pt.FalseAlarms++
		}
	}
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		return float64(all[int(p*float64(len(all)-1))].Nanoseconds()) / 1e3
	}
	pt.AnswerOpsPerSec = float64(pt.Ops) / hot.Seconds()
	pt.OpsPerSec = float64(pt.Ops) / elapsed.Seconds()
	pt.DrainMillis = float64(elapsed-hot) / float64(time.Millisecond)
	pt.P50Micros = pct(0.50)
	pt.P99Micros = pct(0.99)
	for _, dc := range cl.clients {
		if dc.Err() != nil {
			pt.FalseAlarms++
		}
		pt.NoQuorumSkips += dc.NoQuorumSkips()
		if epochLen == 0 {
			continue
		}
		st := dc.Audit().Stats()
		pt.QueueCap = st.QueueCap
		if st.HighWater > pt.QueueHighWater {
			pt.QueueHighWater = st.HighWater
		}
		pt.QueueDegraded += st.Degraded
		if st.MaxBatch > pt.MaxBatch {
			pt.MaxBatch = st.MaxBatch
		}
		if done := dc.Audit().Completed(); done > pt.EpochsClosed {
			pt.EpochsClosed = done
		}
	}
	return pt, nil
}

// e17PollDetection polls until some client mirrors a typed
// epoch-audit failure.
func e17PollDetection(clients []*driver.Client, timeout time.Duration) (*audit.EpochAuditFailure, error) {
	deadline := time.Now().Add(timeout)
	poll := backoff.Poll(time.Millisecond)
	for {
		for _, dc := range clients {
			var eaf *audit.EpochAuditFailure
			if err := dc.Err(); err != nil && errors.As(err, &eaf) {
				return eaf, nil
			}
		}
		if time.Now().After(deadline) {
			return nil, errors.New("E17: no typed detection before deadline")
		}
		poll.Sleep()
	}
}

// e17AwaitDetection seals every client and polls until one of them
// mirrors a typed epoch-audit failure.
func e17AwaitDetection(clients []*driver.Client, timeout time.Duration) (*audit.EpochAuditFailure, error) {
	for _, dc := range clients {
		dc.Seal()
	}
	return e17PollDetection(clients, timeout)
}

// e17CrossKeys probes for two keys routing to different shards.
func e17CrossKeys(shards int) (string, string) {
	probe := func(k string) int {
		s, err := vdb.RouteOp(&vdb.WriteOp{Puts: []vdb.KV{{Key: k, Val: []byte("v")}}}, shards)
		if err != nil {
			panic(err)
		}
		return s
	}
	ka := "xk-0"
	sa := probe(ka)
	for i := 1; ; i++ {
		kb := fmt.Sprintf("xk-%d", i)
		if probe(kb) != sa {
			return ka, kb
		}
	}
}

// e17Trial reruns one adversary behavior under the async auditor and
// records how long the lie survived.
func e17Trial(kind adversary.Kind, trigger uint64, cfg E17Config, shards int) (E17Trial, error) {
	users := cfg.DetectUsers
	epochLen := cfg.DetectEpochLen
	var db *vdb.DB
	if shards > 1 {
		db = vdb.NewSharded(0, shards)
		users = 2
	} else {
		db = vdb.New(0)
	}
	acfg := adversary.Config{Kind: kind, TriggerOp: trigger}
	if kind == adversary.Fork {
		acfg.GroupB = map[sig.UserID]bool{sig.UserID(users - 1): true}
	}
	adv := adversary.Wrap(server.NewP2(db), acfg)
	cl, err := newE17Cluster(adv, users, 0, epochLen, 0, 0, 0)
	if err != nil {
		return E17Trial{}, err
	}
	defer cl.close()

	var ka, kb string
	if shards > 1 {
		ka, kb = e17CrossKeys(shards)
	}
	// Issue concurrently, one goroutine per client. Sequential
	// round-robin would deadlock under Fork: the victim branch's
	// counter advances at a fraction of the main branch's rate, so the
	// un-forked clients cross into the next epoch and block at
	// admission while the forked client — whose boundary report is
	// what closes the epoch — never gets its turn. Concurrent clients
	// let the forked one run until it crosses the boundary or seals;
	// either way the epoch closes and the closure check convicts.
	perUser := int(trigger+2*epochLen) / users
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for j := 0; j < perUser; j++ {
				i := u*perUser + j
				var op vdb.Op = &vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("t-%d", i), Val: []byte("v")}}}
				if shards > 1 && j%4 == 3 {
					op = &vdb.CrossOp{Legs: []vdb.Op{
						&vdb.WriteOp{Puts: []vdb.KV{{Key: ka, Val: []byte(fmt.Sprintf("l%d", i))}}},
						&vdb.WriteOp{Puts: []vdb.KV{{Key: kb, Val: []byte(fmt.Sprintf("r%d", i))}}},
					}}
				}
				if _, err := cl.clients[u].Do(op); err != nil {
					return // detection mirrored into the hot path; confirm below
				}
			}
			cl.clients[u].Seal()
		}(u)
	}
	// A conviction can be one-sided (TornCommit breaks only its
	// issuer's VO chain), and a convicted auditor stops reporting, so
	// honest peers may stall at admission mid-workload. Once a
	// conviction is latched the measurement is made: give the workload
	// a short grace to finish, then cut the stalled clients loose.
	wdone := make(chan struct{})
	go func() { wg.Wait(); close(wdone) }()
	var eaf *audit.EpochAuditFailure
	deadline := time.Now().Add(60 * time.Second)
	poll := backoff.Poll(5 * time.Millisecond)
waitLoop:
	for {
		select {
		case <-wdone:
			eaf, err = e17AwaitDetection(cl.clients, 60*time.Second)
			break waitLoop
		default:
		}
		if eaf, _ = e17PollDetection(cl.clients, 0); eaf != nil {
			select {
			case <-wdone:
			case <-time.After(2 * time.Second):
				cl.close()
				<-wdone
			}
			break waitLoop
		}
		if time.Now().After(deadline) {
			err = errors.New("E17: workload stalled without a detection")
			break waitLoop
		}
		poll.Sleep()
	}
	if err != nil {
		return E17Trial{}, fmt.Errorf("%s@%d: %w", kind, trigger, err)
	}
	tr := E17Trial{
		Behavior: kind.String(), TriggerOp: trigger, EpochLen: epochLen,
		DeviatedAtOp: adv.DeviatedAtOp(), Detected: true, FailEpoch: eaf.Epoch,
	}
	if de, ok := core.AsDetection(eaf); ok {
		tr.Class = de.Class.String()
	}
	e17Finish(&tr, eaf)
	return tr, nil
}

// e17Finish computes the exposure window and the one-epoch bound from
// a conviction.
func e17Finish(tr *E17Trial, eaf *audit.EpochAuditFailure) {
	dev := tr.DeviatedAtOp
	if dev == 0 {
		dev = tr.TriggerOp
	}
	if eaf.Ctr != 0 && eaf.Ctr >= dev {
		tr.DetectLatencyOps = eaf.Ctr - dev
	} else if end := (eaf.Epoch + 1) * tr.EpochLen; end >= dev {
		tr.DetectLatencyOps = end - dev
	}
	devEpoch := uint64(0)
	if dev > 0 {
		devEpoch = (dev - 1) / tr.EpochLen
	}
	tr.WithinOneEpoch = eaf.Epoch <= devEpoch+1
}

// e17Divergence is the witness trial: the server's publisher commits a
// root to the quorum that contradicts what the clients verified; the
// next per-epoch witness check must convict.
func e17Divergence(cfg E17Config) (E17Trial, error) {
	const users = 2
	epochLen := cfg.DetectEpochLen
	db := vdb.New(0)
	// Commit cadence effectively never: the only commitment the
	// witnesses will hold is the forged one below.
	cl, err := newE17Cluster(server.NewP2(db), users, 0, epochLen, 0, 3, 1<<60)
	if err != nil {
		return E17Trial{}, err
	}
	defer cl.close()

	half := int(epochLen) / 2
	for i := 0; i < half; i++ {
		if _, err := cl.clients[i%users].Do(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("w-%d", i), Val: []byte("v")}}}); err != nil {
			return E17Trial{}, err
		}
	}
	for _, dc := range cl.clients {
		if err := dc.WaitAudited(30 * time.Second); err != nil {
			return E17Trial{}, err
		}
	}
	// Forge: a validly signed commitment for a counter the clients
	// verified, naming a root that was never on their history.
	forged := uint64(half / 2)
	cl.pub.CommitNow(forged, digest.Digest{0xde, 0xad, 0xbe, 0xef})
	cl.pub.Flush()
	for i := half; i < int(2*epochLen); i++ {
		if _, err := cl.clients[i%users].Do(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("w-%d", i), Val: []byte("v")}}}); err != nil {
			break
		}
	}
	eaf, err := e17AwaitDetection(cl.clients, 60*time.Second)
	if err != nil {
		return E17Trial{}, fmt.Errorf("witness-divergence: %w", err)
	}
	tr := E17Trial{
		Behavior: "witness-divergence", TriggerOp: uint64(half),
		DeviatedAtOp: uint64(half), EpochLen: epochLen,
		Detected: true, FailEpoch: eaf.Epoch,
	}
	if de, ok := core.AsDetection(eaf); ok {
		tr.Class = de.Class.String()
	}
	e17Finish(&tr, eaf)
	return tr, nil
}

// RunE17 runs the full experiment.
func RunE17(cfg E17Config) (*E17Data, error) {
	d := &E17Data{
		DBSize: cfg.DBSize, OpsPerClient: cfg.OpsPerClient,
		SyncK: cfg.SyncK, EpochFactor: cfg.EpochFactor, Witnesses: cfg.Witnesses,
	}
	throughput := map[string]float64{}
	for _, mode := range []string{"sync", "epoch"} {
		for _, n := range cfg.ClientCounts {
			pt, err := e17Point(mode, cfg, n)
			if err != nil {
				return nil, fmt.Errorf("E17 %s/%d: %w", mode, n, err)
			}
			d.Points = append(d.Points, pt)
			d.FalseAlarms += pt.FalseAlarms
			throughput[fmt.Sprintf("%s/%d", mode, n)] = pt.OpsPerSec
		}
	}
	if len(cfg.ClientCounts) > 0 {
		max := cfg.ClientCounts[len(cfg.ClientCounts)-1]
		if s := throughput[fmt.Sprintf("sync/%d", max)]; s > 0 {
			d.EpochSpeedupAtMax = throughput[fmt.Sprintf("epoch/%d", max)] / s
		}
	}

	// Phase 2: the adversary suite under the async auditor. Fork
	// triggers sweep the epoch grid — just inside an epoch, at its last
	// op, and deep in later epochs — so the latency distribution shows
	// both the near-instant and the full-epoch-of-exposure cases.
	N := cfg.DetectEpochLen
	trials := []struct {
		kind    adversary.Kind
		trigger uint64
		shards  int
	}{
		{adversary.Fork, N / 3, 1},
		{adversary.Fork, N - 1, 1},
		{adversary.Fork, N + N/2, 1},
		{adversary.Fork, 2*N + 2, 1},
		{adversary.Fork, 3*N + N/3, 1},
		{adversary.TornCommit, N + 2, 4},
	}
	d.AllDetected, d.AllWithinOneEpoch = true, true
	for _, tc := range trials {
		tr, err := e17Trial(tc.kind, tc.trigger, cfg, tc.shards)
		if err != nil {
			return nil, err
		}
		d.Trials = append(d.Trials, tr)
	}
	tr, err := e17Divergence(cfg)
	if err != nil {
		return nil, err
	}
	d.Trials = append(d.Trials, tr)
	for _, tr := range d.Trials {
		d.AllDetected = d.AllDetected && tr.Detected
		d.AllWithinOneEpoch = d.AllWithinOneEpoch && tr.WithinOneEpoch
		if tr.DetectLatencyOps > d.MaxDetectLatency {
			d.MaxDetectLatency = tr.DetectLatencyOps
		}
	}
	return d, nil
}

// E17 runs the experiment with the default configuration and renders
// it as a table.
func E17() *Table {
	d, err := RunE17(DefaultE17Config())
	if err != nil {
		panic(err)
	}
	return d.Table()
}

// Table renders the data as the E17 exhibit.
func (d *E17Data) Table() *Table {
	t := &Table{
		ID:       "E17",
		Title:    "Epoch-batched async audit: verified throughput off the hot path, detection within one epoch",
		PaperRef: "Section 2.2.1's k-bounded deviation with k = one epoch; DESIGN.md \"Epoch-batched audit\"",
		Columns:  []string{"mode", "clients", "epoch-N", "answered/s", "verified/s", "p50-us", "p99-us", "queue-high/cap", "degraded", "alarms"},
	}
	for _, p := range d.Points {
		epoch, q, deg := "-", "-", "-"
		if p.EpochLen > 0 {
			epoch = fmt.Sprint(p.EpochLen)
			q = fmt.Sprintf("%d/%d", p.QueueHighWater, p.QueueCap)
			deg = fmt.Sprint(p.QueueDegraded)
		}
		t.AddRow(p.Mode, p.Clients, epoch, int(p.AnswerOpsPerSec), int(p.OpsPerSec),
			fmt.Sprintf("%.0f", p.P50Micros), fmt.Sprintf("%.0f", p.P99Micros), q, deg, p.FalseAlarms)
	}
	for _, tr := range d.Trials {
		t.AddRow(fmt.Sprintf("detect %s@%d", tr.Behavior, tr.TriggerOp), "-", tr.EpochLen, "-", "-", "-", "-",
			fmt.Sprintf("lat=%d ops", tr.DetectLatencyOps), tr.Class, boolMark(tr.WithinOneEpoch)+" <=1 epoch")
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("verified throughput counts nothing until the audit drain (seal + final closure) finishes; epoch-audit over sync at the largest population: %.2fx (acceptance: >= 1.5x)", d.EpochSpeedupAtMax),
		fmt.Sprintf("false alarms across all honest runs: %d; witness checks ran per epoch on the auditor, no-quorum skips stayed availability facts", d.FalseAlarms),
		fmt.Sprintf("every adversary trial convicted with a typed detection within one epoch of first deviation (max exposure %d ops); sync mode's bound is 'before the next op', epoch mode's is 'within one epoch' — the paper's k-deviation knob made concrete", d.MaxDetectLatency))
	return t
}
