package bench

import (
	"sort"
	"testing"
)

// TestStressConcurrentClients hammers every verified protocol with 16
// concurrent TCP clients (run it with -race: it is the pipelined hot
// path's concurrency regression test). Two properties must hold:
//
//  1. Every response verifies — each e13 client runs the full user
//     state machine and do() fails on any proof that does not check
//     out, so e13Run surfacing no error is the assertion.
//  2. The operation counters the server presented, pooled across all
//     clients, form a gap-free permutation: the ordered section
//     admitted each op exactly once, with no lost or duplicated slot,
//     no matter how decode/encode stages interleave around it.
//
// The trusted floor is excluded: it has no proofs to verify and its
// handler does not report counters.
func TestStressConcurrentClients(t *testing.T) {
	const (
		clients  = 16
		totalOps = 320
	)
	for _, s := range e13Schemes() {
		if s.name == "trusted" {
			continue
		}
		t.Run(s.name, func(t *testing.T) {
			results, _, err := e13Run(s, 200, clients, totalOps)
			if err != nil {
				t.Fatal(err)
			}
			var ctrs []uint64
			for _, r := range results {
				ctrs = append(ctrs, r.ctrs...)
			}
			want := clients * (totalOps/clients + e13Warmup)
			if len(ctrs) != want {
				t.Fatalf("collected %d ctrs, want %d", len(ctrs), want)
			}
			sort.Slice(ctrs, func(i, j int) bool { return ctrs[i] < ctrs[j] })
			for i := 1; i < len(ctrs); i++ {
				if ctrs[i] != ctrs[i-1]+1 {
					t.Fatalf("ctr sequence broken at %d: %d then %d",
						i, ctrs[i-1], ctrs[i])
				}
			}
		})
	}
}
