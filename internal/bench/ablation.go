package bench

import (
	"fmt"
	"time"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/merkle"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sim"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/wire"
	"trustedcvs/internal/workload"
)

// E9 ablates the Merkle B+-tree branching factor (the paper's m):
// higher order means shorter trees (fewer levels in the VO) but wider
// nodes (more keys shipped per expanded node). The sweet spot for VO
// bytes sits at moderate orders — the reason DefaultOrder is 8.
func E9() *Table {
	t := &Table{
		ID:       "E9",
		Title:    "Ablation: Merkle branching factor m (10k records, single-key update)",
		PaperRef: "Section 4.1 (\"up to m keys and m+1 pointers\") — design choice",
		Columns:  []string{"order", "height", "vo-digests", "vo-wire-bytes", "apply-us", "verify-us"},
	}
	const n = 10_000
	for _, order := range []int{3, 4, 8, 16, 32, 64} {
		tr := merkle.New(order)
		for i := 0; i < n; i++ {
			tr = tr.Put(fmt.Sprintf("key-%07d", i), []byte("value"))
		}
		tr.RootDigest()
		key := fmt.Sprintf("key-%07d", n/2)

		const iters = 100
		start := time.Now()
		var vo *merkle.VO
		for i := 0; i < iters; i++ {
			rec := tr.Record()
			if err := rec.Put(key, []byte("updated")); err != nil {
				panic(err)
			}
			rec.Tree().RootDigest()
			vo = rec.VO()
		}
		applyUS := float64(time.Since(start).Microseconds()) / iters

		oldRoot := tr.RootDigest()
		bytes, err := wire.Size(vo)
		if err != nil {
			panic(err)
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := vo.Replay(oldRoot, func(pt *merkle.Tree) (*merkle.Tree, error) {
				return pt.PutErr(key, []byte("updated"))
			}); err != nil {
				panic(err)
			}
		}
		verifyUS := float64(time.Since(start).Microseconds()) / iters

		t.AddRow(order, tr.Height(), vo.Stats().PrunedDigests, bytes, applyUS, verifyUS)
	}
	t.Notes = append(t.Notes,
		"small orders make tall trees (many pruned sibling digests); large orders ship wide nodes — VO bytes are minimized at moderate m",
		"apply time includes VO construction and the post-state root digest")
	return t
}

// E10 ablates the synchronization period k — the paper's central
// knob: detection delay is bounded by k (Theorems 4.1/4.2) while the
// amortized broadcast traffic shrinks as 1/k. The table makes the
// tradeoff concrete.
func E10() *Table {
	t := &Table{
		ID:       "E10",
		Title:    "Ablation: sync period k — detection delay vs broadcast traffic (Protocol II, 4 users)",
		PaperRef: "Section 2.2.1 (k-bounded detection) vs Section 4 sync cost",
		Columns:  []string{"k", "bcast-msgs/op", "syncs", "mean-user-delay", "worst-user-delay", "bound-holds"},
	}
	for _, k := range []uint64{1, 2, 4, 8, 16, 32, 64} {
		const trials = 8
		var bcast, totalOps, syncs, sumDelay, worst int
		detected := 0
		for trial := 0; trial < trials; trial++ {
			trace := workload.Generate(workload.Config{
				Users: 4, Files: 10, Ops: int(k)*8 + 80, WriteRatio: 0.5, FilesPerOp: 1, Seed: int64(trial + int(k)*100),
			})
			res := sim.Run(sim.Config{
				Protocol: server.P2, Users: 4, K: k, Trace: trace,
				Adversary: &adversary.Config{Kind: adversary.DropUpdate, TriggerOp: uint64(15 + trial*2)},
			})
			if res.Err != nil {
				panic(res.Err)
			}
			bcast += res.Messages.Broadcast
			totalOps += res.TotalOps
			syncs += res.Syncs
			if res.Detected {
				detected++
				sumDelay += res.MaxUserOpsAfterDeviation
				if res.MaxUserOpsAfterDeviation > worst {
					worst = res.MaxUserOpsAfterDeviation
				}
			}
		}
		mean := 0.0
		if detected > 0 {
			mean = float64(sumDelay) / float64(detected)
		}
		t.AddRow(k,
			float64(bcast)/float64(totalOps),
			syncs,
			mean,
			worst,
			boolMark(detected == trials && worst <= int(k)))
	}
	t.Notes = append(t.Notes,
		"broadcast traffic per operation falls roughly as (n+1)/k while worst-case detection delay rises to k — the user picks the point on this curve",
		"k=1 gives immediate (next-op) detection at one full sync round per operation")
	return t
}

// E12 measures fault localization (the paper's future-work item 1,
// implemented in internal/forensics): the probability of pinpointing
// the forged operation slot, and the localization error, as a function
// of the users' journal capacity.
func E12() *Table {
	t := &Table{
		ID:       "E12",
		Title:    "Fault localization: accuracy vs journal capacity (Protocol II, 4 users, fork attack)",
		PaperRef: "Section 6 future work (1): \"detect exactly when the fault occurred\"",
		Columns:  []string{"journal-cap", "trials", "detected", "localized", "exact-fork-ctr", "state-bytes/user"},
	}
	for _, cap := range []int{0, 8, 32, 128, 512} {
		const trials = 10
		detected, located, exact := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			trace, info := workload.Partitionable(2, 2, 16, int64(trial))
			res := sim.Run(sim.Config{
				Protocol: server.P2, Users: 4, K: 6, JournalCap: cap,
				Trace: trace,
				Adversary: &adversary.Config{
					Kind: adversary.Fork, TriggerOp: info.T1Op, GroupB: info.GroupB,
				},
			})
			if res.Err != nil {
				panic(res.Err)
			}
			if !res.Detected {
				continue
			}
			detected++
			if res.Forensics != nil && res.Forensics.Located {
				located++
				if res.Forensics.ForkCtr == info.T1Op {
					exact++
				}
			}
		}
		// Journal memory: cap entries × one Transition
		// (user id 4 + counter 8 + two 32-byte digests).
		const entryBytes = 4 + 8 + 32 + 32
		t.AddRow(cap, trials,
			fmt.Sprintf("%d/%d", detected, trials),
			fmt.Sprintf("%d/%d", located, trials),
			fmt.Sprintf("%d/%d", exact, trials),
			cap*entryBytes)
	}
	t.Notes = append(t.Notes,
		"journal capacity trades a bounded relaxation of desideratum 5 (constant state) for post-detection rollback precision",
		"cap 0 detects but cannot localize; any capacity covering the fork window localizes it exactly")
	return t
}

// E11 ablates commit batch size: a CommitOp touching f files shares
// one VO, so the per-file proof cost falls as the tree paths overlap
// and the fixed per-message cost amortizes.
func E11() *Table {
	t := &Table{
		ID:       "E11",
		Title:    "Ablation: files per commit — VO amortization (10k-record repository)",
		PaperRef: "Section 4.1 generalized to operation batches (DESIGN.md §3)",
		Columns:  []string{"files/commit", "vo-wire-bytes", "bytes/file", "vo-digests", "verify-us"},
	}
	// Seed a repository with 5k files at head revision 1.
	db := vdb.New(0)
	for i := 0; i < 5000; i += 250 {
		op := &cvs.CommitOp{Author: "seed", TimeUnix: 1}
		for j := i; j < i+250; j++ {
			path := fmt.Sprintf("src/file%05d.c", j)
			op.Files = append(op.Files, cvs.CommitFile{Path: path, Hash: rcs.HashContent([]byte(path))})
		}
		if err := db.Preload(op); err != nil {
			panic(err)
		}
	}
	for _, batch := range []int{1, 2, 4, 8, 16, 32, 64} {
		op := &cvs.CommitOp{Author: "bench", Log: "batch", TimeUnix: 2}
		for j := 0; j < batch; j++ {
			path := fmt.Sprintf("src/file%05d.c", j*71%5000)
			op.Files = append(op.Files, cvs.CommitFile{Path: path, Hash: rcs.HashContent([]byte("new"))})
		}
		fork := db.Fork()
		oldRoot := fork.Root()
		ans, vo, err := fork.Apply(op)
		if err != nil {
			panic(err)
		}
		bytes, err := wire.Size(vo)
		if err != nil {
			panic(err)
		}
		const iters = 50
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := vdb.Verify(op, ans, vo, oldRoot); err != nil {
				panic(err)
			}
		}
		verifyUS := float64(time.Since(start).Microseconds()) / iters
		t.AddRow(batch, bytes, bytes/batch, vo.Stats().PrunedDigests, verifyUS)
	}
	t.Notes = append(t.Notes,
		"bytes per file fall with batch size as root-adjacent tree paths are shared across the batched keys",
		"a multi-file commit is ONE operation of the model: one ctr slot, one VO, atomic (DESIGN.md §3)")
	return t
}
