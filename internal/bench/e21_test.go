package bench

import (
	"testing"
	"time"
)

// TestRunE21Small runs the overload sweep at CI scale and pins the
// mechanics rather than the headline ratios (which need the full
// window to stabilize): shed operations are atomically refused, the
// refusal ladder is ordered, the protected server out-delivers the
// unprotected one at the top factor, and the adversary trial under
// flood still convicts with zero false alarms on the honest control.
func TestRunE21Small(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep is seconds-long")
	}
	cfg := E21Config{
		DBSize: 100, Service: 2 * time.Millisecond, MaxConcurrent: 4,
		QueueDepth: 32, Target: 20 * time.Millisecond,
		Deadline: 150 * time.Millisecond, Window: 600 * time.Millisecond,
		Workers: 64, Factors: []float64{1, 4},
		TrialFactors: []float64{2},
		TrialUsers:   3, TrialEpochLen: 16, TrialFlood: 8,
	}
	d, err := RunE21(cfg)
	if err != nil {
		t.Fatalf("RunE21: %v", err)
	}
	if !d.AllAtomic {
		t.Errorf("a shed was not atomic: some point's server op counter disagrees with delivered successes")
	}
	var unprotTop, protTop E21Point
	for _, p := range d.Points {
		if p.Factor != 4 {
			continue
		}
		if p.Mode == "protected" {
			protTop = p
		} else {
			unprotTop = p
		}
	}
	if protTop.WithinDeadline <= unprotTop.WithinDeadline {
		t.Errorf("protected goodput %d <= unprotected %d at 4x capacity",
			protTop.WithinDeadline, unprotTop.WithinDeadline)
	}
	if protTop.ServerShedTotal == 0 && protTop.ServerExpireTotal == 0 {
		t.Errorf("protected server refused nothing at 4x capacity")
	}
	// The ladder: the bottom class must starve at least as hard as
	// user ops at the overloaded point (small-sample slack included).
	if protTop.RefusedFrac["background"]+0.05 < protTop.RefusedFrac["user"] {
		t.Errorf("refusal ladder inverted: background %.2f < user %.2f",
			protTop.RefusedFrac["background"], protTop.RefusedFrac["user"])
	}
	if !d.AllConvicted {
		t.Errorf("fork trial under flood was not convicted")
	}
	if d.FalseAlarms != 0 {
		t.Errorf("honest trial under flood raised %d false alarms", d.FalseAlarms)
	}
	if !d.ZeroDangling {
		t.Errorf("honest trial left dangling audit obligations after drain")
	}
}
