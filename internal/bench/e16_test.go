package bench

import "testing"

// TestRunE16Small drives the forest scaling sweep end to end at a
// size a CI box can afford: every scheme/population point must
// deliver its full op count through verified clients, and the
// occupancy accounting must stay within [0,1]. The headline rise and
// speedup figures are machine-dependent and recorded by tcvs-bench,
// not asserted here.
func TestRunE16Small(t *testing.T) {
	cfg := DefaultE16Config()
	cfg.DBSize = 100
	cfg.PerClientRate = 50
	cfg.OpsPerClient = 6
	cfg.Shards = 4
	cfg.ClientCounts = []int{2, 4}
	d, err := RunE16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(cfg.ClientCounts); len(d.Points) != want {
		t.Fatalf("got %d points, want %d", len(d.Points), want)
	}
	for _, pt := range d.Points {
		wantOps := pt.Clients * cfg.OpsPerClient
		if pt.Ops != wantOps {
			t.Errorf("%s/%d: delivered %d ops, want %d", pt.Scheme, pt.Clients, pt.Ops, wantOps)
		}
		if pt.OpsPerSec <= 0 {
			t.Errorf("%s/%d: non-positive throughput %v", pt.Scheme, pt.Clients, pt.OpsPerSec)
		}
		if pt.BusiestShardOcc < 0 || pt.BusiestShardOcc > 1 {
			t.Errorf("%s/%d: occupancy %v outside [0,1]", pt.Scheme, pt.Clients, pt.BusiestShardOcc)
		}
		if pt.Scheme != "trusted" && len(pt.ShardStats) == 0 {
			t.Errorf("%s/%d: no per-shard stats", pt.Scheme, pt.Clients)
		}
	}
}
