package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"trustedcvs/internal/backoff"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/driver"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/forensics"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/witness"
)

// E15 measures witness replication under failure: a full Protocol II
// deployment whose primary publishes signed root commitments to a set
// of witness nodes is killed mid-workload behind faulty connections,
// and a witness is promoted from the latest checksummed checkpoint it
// holds. The claims under test:
//
//  1. Zero false alarms on benign failover: the kill, the failover to
//     the promoted endpoint, and every retry in between never produce
//     a deviation report — and the witness cross-check each client
//     runs before acknowledging a sync round stays silent, because a
//     witness quorum that is merely unreachable (ErrNoQuorum) is an
//     availability fact, not a detection.
//  2. Exactly-once across promotion: the promoted server's final
//     operation counter equals the number of operations performed —
//     clients replayed in-flight ops through the restored session
//     table, so nothing was lost and nothing double-applied.
//  3. Bounded fork detection: a forked commitment stream split across
//     disjoint witness subsets is convicted within ONE gossip round,
//     and the resulting evidence bundle verifies offline — two signed
//     commitments that cannot both belong to one honest history.
//  4. Benign gossip is silent: an honest commitment stream scattered
//     across the witnesses converges with zero evidence minted.

// E15Config parameterizes RunE15.
type E15Config struct {
	// DBSize is the number of preloaded keys.
	DBSize int
	// Users is the client population.
	Users int
	// OpsPerUser is the workload each client performs.
	OpsPerUser int
	// K is the sync period (every K ops a broadcast barrier round).
	K uint64
	// Witnesses is the witness population.
	Witnesses int
	// CommitEvery is the primary's commitment cadence in operations.
	CommitEvery uint64
	// Seed derives injector seeds and client jitter seeds.
	Seed int64
	// ResetProb and TruncateProb are the per-I/O fault rates on every
	// client's server and hub connections.
	ResetProb    float64
	TruncateProb float64
}

// DefaultE15Config is what E15() and cmd/tcvs-bench run.
func DefaultE15Config() E15Config {
	return E15Config{
		DBSize: 500, Users: 4, OpsPerUser: 100, K: 8,
		Witnesses: 3, CommitEvery: 4, Seed: 43,
		ResetProb: 0.02, TruncateProb: 0.01,
	}
}

// E15Data is the full experiment result, serialized to BENCH_E15.json
// by cmd/tcvs-bench.
type E15Data struct {
	Users       int    `json:"users"`
	OpsPerUser  int    `json:"ops_per_user"`
	TotalOps    uint64 `json:"total_ops"`
	K           uint64 `json:"k"`
	Witnesses   int    `json:"witnesses"`
	CommitEvery uint64 `json:"commit_every"`

	FaultsInjected      uint64  `json:"faults_injected"`
	TransportReconnects uint64  `json:"transport_reconnects"`
	Failovers           uint64  `json:"failovers"`
	FailoverMillis      float64 `json:"failover_ms"`

	FalseAlarms         int    `json:"false_alarms"`
	NoQuorumSkips       uint64 `json:"no_quorum_skips"`
	FinalCtr            uint64 `json:"final_ctr"`
	CtrMatchesOps       bool   `json:"ctr_matches_ops"`
	PromotedRootMatches bool   `json:"promoted_root_matches"`

	ForkDetected            bool `json:"fork_detected"`
	ForkDetectGossipRounds  int  `json:"fork_detect_gossip_rounds"`
	EvidenceVerifiesOffline bool `json:"evidence_verifies_offline"`

	BenignGossipEvidence int `json:"benign_gossip_evidence"`
}

// WriteJSON writes the result in the checked-in BENCH_E15.json format.
func (d *E15Data) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// inprocWitness returns a DialFunc serving n in-process.
func inprocWitness(n *witness.Node) witness.DialFunc {
	return func() (transport.Caller, error) {
		return transport.NewInproc(n.Handler()), nil
	}
}

// RunE15 runs the full experiment.
func RunE15(cfg E15Config) (*E15Data, error) {
	d := &E15Data{
		Users: cfg.Users, OpsPerUser: cfg.OpsPerUser,
		TotalOps: uint64(cfg.Users) * uint64(cfg.OpsPerUser), K: cfg.K,
		Witnesses: cfg.Witnesses, CommitEvery: cfg.CommitEvery,
	}
	if err := runE15Failover(cfg, d); err != nil {
		return nil, err
	}
	if err := runE15Fork(d); err != nil {
		return nil, err
	}
	if err := runE15BenignGossip(d); err != nil {
		return nil, err
	}
	return d, nil
}

// runE15Failover is phase 1: kill the primary mid-workload, promote a
// witness from its stored checkpoint, and let the clients fail over.
func runE15Failover(cfg E15Config, d *E15Data) error {
	db := seedDB(cfg.DBSize)
	base := server.NewP2(db)
	store := cvs.NewStore()

	wid, err := witness.NewIdentity("primary")
	if err != nil {
		return err
	}
	pub := witness.NewPublisher(wid, cfg.CommitEvery)
	nodes := make([]*witness.Node, cfg.Witnesses)
	for i := range nodes {
		nodes[i] = witness.NewNode(fmt.Sprintf("w%d", i), 0)
		nodes[i].Pin("primary", wid.Public())
		pub.AddWitness(nodes[i].Name(), inprocWitness(nodes[i]))
	}
	srv := server.WithOpHook(base, pub.OpApplied)

	hub, err := broadcast.ListenHub("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer hub.Close()
	lisA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// Reserve the promotion address up front so every client can carry
	// it as its second endpoint from the start (a real deployment would
	// distribute the witness addresses the same way).
	lisB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lisA.Close()
		return err
	}
	addrB := lisB.Addr().String()
	lisB.Close()

	sessions := transport.NewSessionTable(0)
	ts := transport.ServeListener(lisA, driver.NewHandler(srv, store), transport.Options{Sessions: sessions})
	tsClosed := false
	defer func() {
		if !tsClosed {
			ts.Close()
		}
	}()

	root := base.DB().Root()
	pol := transport.RetryPolicy{CallTimeout: 5 * time.Second, MaxAttempts: 12}
	var (
		injs     []*fault.Injector
		callers  []*transport.ResilientClient
		channels []broadcast.Channel
		clients  []*driver.Client
	)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < cfg.Users; i++ {
		cinj := fault.NewInjector(fault.Config{
			Seed: uint64(cfg.Seed) + uint64(i), After: 8,
			ResetProb: cfg.ResetProb, TruncateProb: cfg.TruncateProb,
		})
		hinj := fault.NewInjector(fault.Config{
			Seed: uint64(cfg.Seed) + 1000 + uint64(i), After: 8,
			ResetProb: cfg.ResetProb, TruncateProb: cfg.TruncateProb,
		})
		injs = append(injs, cinj, hinj)
		p := pol
		p.JitterSeed = uint64(cfg.Seed)*1000 + uint64(i) + 1
		caller := transport.DialResilientEndpoints([]transport.Endpoint{
			{Name: "primary", Dial: fault.Dialer(lisA.Addr().String(), cinj)},
			{Name: "backup", Dial: fault.Dialer(addrB, cinj)},
		}, p)
		ch := broadcast.DialHubResumeFunc(fault.Dialer(hub.Addr(), hinj))
		u := proto2.NewUser(sig.UserID(i), root, cfg.K)
		dc := driver.NewP2(u, caller, ch, cfg.Users)
		chk := witness.NewCheck("primary", wid.Public(), 0)
		for _, n := range nodes {
			chk.AddWitness(n.Name(), inprocWitness(n))
		}
		dc.SetWitnessCheck(chk)
		callers = append(callers, caller)
		channels = append(channels, ch)
		clients = append(clients, dc)
	}

	var opsDone atomic.Uint64
	var promotedNanos atomic.Int64
	recoverAt := make([]atomic.Int64, cfg.Users)
	var wg sync.WaitGroup
	errs := make([]error, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := clients[id]
			for j := 0; j < cfg.OpsPerUser; j++ {
				op := benchOp(id*100003+j, cfg.DBSize)
				if _, err := cl.Do(op); err != nil {
					errs[id] = fmt.Errorf("client %d op %d: %w", id, j, err)
					return
				}
				opsDone.Add(1)
				if t := promotedNanos.Load(); t != 0 && recoverAt[id].Load() == 0 {
					recoverAt[id].Store(time.Now().UnixNano())
				}
			}
		}(i)
	}

	// Kill the primary once the workload is half done. As in E14 the
	// transport drains first, then the checkpoint cut is taken — every
	// acked op is inside the cut. The cut is then SHIPPED to the
	// witnesses (validated envelope + commitment at its head) and the
	// primary's state is abandoned: recovery happens from what the
	// witnesses hold, not from the dead process.
	half := d.TotalOps / 2
	poll := backoff.Poll(time.Millisecond)
	for opsDone.Load() < half {
		poll.Sleep()
	}
	killStart := time.Now()
	ts.Close()
	tsClosed = true
	var snap *server.P2Snapshot
	var cerr error
	sessions.Freeze(func(ss *transport.SessionsSnapshot) {
		snap, cerr = server.CheckpointP2(srv, store)
		if cerr == nil {
			snap.Sessions = ss
		}
	})
	if cerr != nil {
		return fmt.Errorf("E15 checkpoint: %w", cerr)
	}
	if err := pub.ShipSnapshot(snap); err != nil {
		return fmt.Errorf("E15 ship snapshot: %w", err)
	}
	cutRoot := base.DB().Root()

	// Promote a witness: it re-verifies the envelope checksum, restores
	// the database, and cross-checks the restored head against the
	// signed commitment it holds for that counter.
	prom, err := witness.Promote(nodes[0], "primary")
	if err != nil {
		return fmt.Errorf("E15 promote: %w", err)
	}
	d.PromotedRootMatches = prom.Root == cutRoot
	lis2, err := net.Listen("tcp", addrB)
	if err != nil {
		return fmt.Errorf("E15 rebind %s: %w", addrB, err)
	}
	ts2 := transport.ServeListener(lis2, driver.NewHandler(prom.Server, prom.Store), transport.Options{Sessions: prom.Sessions})
	defer ts2.Close()
	promotedNanos.Store(time.Now().UnixNano())

	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			return fmt.Errorf("E15 phase 1 must complete cleanly: %w", werr)
		}
		if err := clients[i].WaitIdle(10 * time.Second); err != nil {
			d.FalseAlarms++
		}
	}
	for _, cl := range clients {
		if cl.Err() != nil {
			d.FalseAlarms++
		}
		d.NoQuorumSkips += cl.NoQuorumSkips()
	}

	var lastRecover int64
	for i := range recoverAt {
		if t := recoverAt[i].Load(); t > lastRecover {
			lastRecover = t
		}
	}
	if lastRecover > 0 {
		d.FailoverMillis = float64(lastRecover-killStart.UnixNano()) / 1e6
	}
	d.FinalCtr = prom.Server.DB().Ctr()
	d.CtrMatchesOps = d.FinalCtr == d.TotalOps
	for _, inj := range injs {
		d.FaultsInjected += inj.Injected()
	}
	for _, c := range callers {
		d.TransportReconnects += c.Reconnects()
		d.Failovers += c.Failovers()
	}
	_ = channels
	return nil
}

// e15Root derives a distinct deterministic digest per (branch, index).
func e15Root(branch byte, i int) digest.Digest {
	var r digest.Digest
	r[0], r[1] = branch, byte(i)
	return r
}

// submitCommit delivers one commitment to a witness over its wire
// protocol.
func submitCommit(n *witness.Node, c *forensics.Commitment, pub []byte) error {
	caller := transport.NewInproc(n.Handler())
	defer caller.Close()
	_, err := caller.Call(&witness.SubmitRequest{Commit: c, Pub: pub})
	return err
}

// runE15Fork is phase 3's teeth check: a forked primary feeds branch A
// to one witness and branch B to another. Neither witness sees a
// conflict locally; the fork must be convicted by gossip, and the
// experiment counts the rounds until evidence exists (the design bound
// is one round for a full mesh).
func runE15Fork(d *E15Data) error {
	wid, err := witness.NewIdentity("primary")
	if err != nil {
		return err
	}
	w1 := witness.NewNode("w1", 0)
	w2 := witness.NewNode("w2", 0)
	w1.AddPeer("w2", inprocWitness(w2))
	w2.AddPeer("w1", inprocWitness(w1))
	w1.Pin("primary", wid.Public())
	w2.Pin("primary", wid.Public())

	// Shared prefix (seq 1, 2), then the histories diverge at seq 3.
	prev := digest.Zero
	var shared []*forensics.Commitment
	for i := 1; i <= 2; i++ {
		c := wid.Commit(uint64(i), uint64(i), e15Root('S', i), prev)
		prev = e15Root('S', i)
		shared = append(shared, c)
	}
	for _, c := range shared {
		if err := submitCommit(w1, c, wid.Public()); err != nil {
			return err
		}
		if err := submitCommit(w2, c, wid.Public()); err != nil {
			return err
		}
	}
	prevA, prevB := prev, prev
	for i := 3; i <= 5; i++ {
		ca := wid.Commit(uint64(i), uint64(i), e15Root('A', i), prevA)
		cb := wid.Commit(uint64(i), uint64(i), e15Root('B', i), prevB)
		prevA, prevB = e15Root('A', i), e15Root('B', i)
		if err := submitCommit(w1, ca, wid.Public()); err != nil {
			return err
		}
		if err := submitCommit(w2, cb, wid.Public()); err != nil {
			return err
		}
	}
	if len(w1.Evidence()) != 0 || len(w2.Evidence()) != 0 {
		return fmt.Errorf("E15 fork phase: evidence before any gossip")
	}

	rounds := 0
	for rounds < 5 && (len(w1.Evidence()) == 0 || len(w2.Evidence()) == 0) {
		if err := w1.GossipOnce(); err != nil {
			return err
		}
		rounds++
	}
	d.ForkDetectGossipRounds = rounds
	evs := w1.Evidence()
	d.ForkDetected = len(evs) > 0 && len(w2.Evidence()) > 0
	if !d.ForkDetected {
		return fmt.Errorf("E15 fork phase: no evidence after %d gossip rounds", rounds)
	}
	d.EvidenceVerifiesOffline = true
	for _, ev := range evs {
		if ev.Verify() != nil {
			d.EvidenceVerifiesOffline = false
		}
	}
	return nil
}

// runE15BenignGossip scatters an honest commitment stream across three
// witnesses and gossips until they converge: no evidence may be minted
// from mere propagation lag.
func runE15BenignGossip(d *E15Data) error {
	wid, err := witness.NewIdentity("primary")
	if err != nil {
		return err
	}
	nodes := make([]*witness.Node, 3)
	for i := range nodes {
		nodes[i] = witness.NewNode(fmt.Sprintf("b%d", i), 0)
		nodes[i].Pin("primary", wid.Public())
	}
	for i, n := range nodes {
		for j, p := range nodes {
			if i == j {
				continue
			}
			n.AddPeer(p.Name(), inprocWitness(p))
		}
	}
	prev := digest.Zero
	for i := 1; i <= 9; i++ {
		c := wid.Commit(uint64(i), uint64(i), e15Root('H', i), prev)
		prev = e15Root('H', i)
		if err := submitCommit(nodes[i%3], c, wid.Public()); err != nil {
			return err
		}
	}
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			if err := n.GossipOnce(); err != nil {
				return err
			}
		}
	}
	for _, n := range nodes {
		d.BenignGossipEvidence += len(n.Evidence())
		latest := n.Latest("primary")
		if latest == nil || latest.Seq != 9 {
			return fmt.Errorf("E15 benign gossip: %s did not converge", n.Name())
		}
	}
	return nil
}

// E15 runs the experiment with the default configuration and renders
// it as a table.
func E15() *Table {
	d, err := RunE15(DefaultE15Config())
	if err != nil {
		panic(err)
	}
	return d.Table()
}

// Table renders the data as the E15 exhibit.
func (d *E15Data) Table() *Table {
	t := &Table{
		ID:       "E15",
		Title:    "Witness replication: failover by promotion, fork conviction by gossip",
		PaperRef: "Theorem 3.1's external channel made infrastructural; DESIGN.md \"Witness replication & failover\"",
		Columns:  []string{"metric", "value"},
	}
	t.AddRow("users x ops/user", fmt.Sprintf("%d x %d (k=%d)", d.Users, d.OpsPerUser, d.K))
	t.AddRow("witnesses / commit cadence", fmt.Sprintf("%d / every %d ops", d.Witnesses, d.CommitEvery))
	t.AddRow("faults injected", d.FaultsInjected)
	t.AddRow("transport reconnects", d.TransportReconnects)
	t.AddRow("failovers to promoted witness", d.Failovers)
	t.AddRow("failover latency (kill -> all progressing)", fmt.Sprintf("%.1f ms", d.FailoverMillis))
	t.AddRow("false deviation alarms", d.FalseAlarms)
	t.AddRow("witness checks skipped (no quorum)", d.NoQuorumSkips)
	t.AddRow("final ctr == total ops", fmt.Sprintf("%v (%d)", d.CtrMatchesOps, d.FinalCtr))
	t.AddRow("promoted root == checkpoint root", d.PromotedRootMatches)
	t.AddRow("fork convicted within gossip rounds", fmt.Sprintf("%v (%d round)", d.ForkDetected, d.ForkDetectGossipRounds))
	t.AddRow("evidence verifies offline", d.EvidenceVerifiesOffline)
	t.AddRow("benign gossip evidence minted", d.BenignGossipEvidence)
	t.Notes = append(t.Notes,
		"promotion re-verifies everything: envelope checksum, restored head vs declared head, and the witness's own signed commitment at that counter — a witness cannot be tricked into promoting state it never vouched for",
		"clients keep one session id across failover; the promoted server restored the primary's session table from the shipped checkpoint, so retried in-flight ops replay instead of double-applying",
		"divergence and unavailability are distinct outcomes (ErrDiverged vs ErrNoQuorum): a dead primary or unreachable witness can delay checks but never manufacture an alarm")
	return t
}
