package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
)

// E16 measures the Merkle forest (sharded authenticated DB with a
// signed root-of-roots): verified Protocol II throughput as the client
// population grows, single tree vs forest.
//
// The sweep is open loop: every client offers a fixed rate of verified
// operations (a CVS user commits at a human pace; it does not hammer
// the server in a closed loop), so the offered load — and, while the
// server keeps up, the delivered verified throughput — rises linearly
// with the client count. What the exhibit is really after is the cost
// of keeping up: the single tree funnels every operation through one
// global ordered section, so its lock sees every arrival and its
// queueing shows up as contention and tail latency; the forest narrows
// the ordered section to one shard, so clients hashing to different
// shards never contend. The per-shard counters (vdb.Stats deltas over
// the timed window) recorded with each point are the direct evidence.
//
// Latency is measured from each operation's *scheduled* issue time,
// not its actual send time, so queueing delay behind a convoyed lock
// or a slow server is charged to the scheme rather than silently
// omitted (the coordinated-omission trap).

// E16Config parameterizes RunE16.
type E16Config struct {
	// DBSize is the number of preloaded keys.
	DBSize int
	// PerClientRate is each client's offered load in ops/s.
	PerClientRate float64
	// OpsPerClient is how many paced ops each client performs in the
	// timed window (so a point lasts OpsPerClient/PerClientRate
	// seconds, independent of the client count).
	OpsPerClient int
	// Shards is the forest scheme's shard count.
	Shards int
	// ClientCounts are the population sizes to measure.
	ClientCounts []int
}

// DefaultE16Config is what E16() and cmd/tcvs-bench run.
func DefaultE16Config() E16Config {
	return E16Config{
		DBSize:        1000,
		PerClientRate: 12,
		OpsPerClient:  40,
		Shards:        16,
		ClientCounts:  []int{4, 16, 64, 256},
	}
}

// E16ShardStat is one shard's serial-section accounting over one
// point's timed window (deltas, not cumulative).
type E16ShardStat struct {
	Shard     int     `json:"shard"`
	Ops       uint64  `json:"ops"`
	Contended uint64  `json:"contended"`
	WaitMs    float64 `json:"wait_ms"`
	HeldMs    float64 `json:"held_ms"`
}

// E16Point is one measured (scheme, client count) cell.
type E16Point struct {
	Scheme    string  `json:"scheme"`
	Clients   int     `json:"clients"`
	Shards    int     `json:"shards"`
	Ops       int     `json:"ops"`
	Offered   float64 `json:"offered_ops_per_sec"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// ContendedFrac is the fraction of ordered-section entries that
	// found the shard lock held; LockWaitMs is the total time spent
	// waiting for it. BusiestShardOcc is the busiest shard lock's
	// occupancy — its held time over the window's wall time — which is
	// the quantity that caps throughput: a section occupying o of the
	// wall at load L saturates at L/o. All are deltas over the timed
	// window.
	ContendedFrac   float64        `json:"contended_frac"`
	LockWaitMs      float64        `json:"lock_wait_ms"`
	BusiestShardOcc float64        `json:"busiest_shard_occupancy"`
	ShardStats      []E16ShardStat `json:"shard_stats,omitempty"`
}

// E16Data is the full experiment result, serialized to BENCH_E16.json
// by cmd/tcvs-bench.
type E16Data struct {
	DBSize        int        `json:"db_size"`
	PerClientRate float64    `json:"per_client_rate_ops_per_sec"`
	OpsPerClient  int        `json:"ops_per_client"`
	Shards        int        `json:"shards"`
	Points        []E16Point `json:"points"`
	// ForestRise64Over16 is forest verified throughput at 64 clients
	// over 16 clients — the PR's acceptance number (> 1: verified
	// throughput rises with client count).
	ForestRise64Over16 float64 `json:"forest_rise_64_over_16"`
	// ForestSpeedupAt64 is forest over single-tree verified throughput
	// at 64 clients (≥ ~1: the forest keeps up wherever the single
	// tree does).
	ForestSpeedupAt64 float64 `json:"forest_speedup_vs_single_tree_at_64"`
	// Ordered-section occupancy at the largest population, same
	// offered load: the single tree's one global section vs the
	// forest's busiest shard. Occupancy is what caps throughput — a
	// section at occupancy o saturates at (delivered/o) ops/s — so the
	// ratio is the headroom the forest buys.
	SingleTreeOccAtMax float64 `json:"single_tree_busiest_occupancy_at_max"`
	ForestOccAtMax     float64 `json:"forest_busiest_occupancy_at_max"`
}

// WriteJSON writes the result in the checked-in BENCH_E16.json format.
func (d *E16Data) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// seedDBSharded preloads a forest the same way seedDB preloads a
// single tree (Preload splits each chunk across the shards).
func seedDBSharded(size, shards int) *vdb.DB {
	db := vdb.NewSharded(0, shards)
	const chunk = 500
	for i := 0; i < size; i += chunk {
		op := &vdb.WriteOp{}
		for j := i; j < i+chunk && j < size; j++ {
			op.Puts = append(op.Puts, vdb.KV{Key: fmt.Sprintf("key-%08d", j), Val: []byte("seed")})
		}
		if err := db.Preload(op); err != nil {
			panic(err)
		}
	}
	return db
}

// e16Measure runs one open-loop point: nClients paced clients against
// a fresh server over real TCP, shard stats snapshotted around the
// timed window.
func e16Measure(name string, shards int, cfg E16Config, nClients int,
	db *vdb.DB, handler transport.Handler, newClient func(int) e13Client) (E16Point, error) {
	srv, err := transport.ListenOpts("127.0.0.1:0", handler, transport.Options{})
	if err != nil {
		return E16Point{}, err
	}
	defer srv.Close()

	callers := make([]transport.Caller, nClients)
	clients := make([]e13Client, nClients)
	for i := 0; i < nClients; i++ {
		c, err := transport.Dial(srv.Addr())
		if err != nil {
			return E16Point{}, err
		}
		defer c.Close()
		callers[i] = c
		clients[i] = newClient(i)
	}

	lats := make([][]time.Duration, nClients)
	errs := make([]error, nClients)
	run := func(warm bool) {
		var wg sync.WaitGroup
		interval := time.Duration(float64(time.Second) / cfg.PerClientRate)
		// Clients start phase-shifted across one interval so arrivals
		// spread uniformly instead of beating in lockstep.
		start := time.Now().Add(5 * time.Millisecond)
		for i := 0; i < nClients; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if warm {
					// Untimed closed-loop warm-up: TCP, gob engines and
					// buffer pools reach steady state before the window.
					for j := 0; j < e13Warmup; j++ {
						op := benchOp(id*100003+j, cfg.DBSize)
						if _, err := clients[id].do(callers[id], op); err != nil {
							errs[id] = fmt.Errorf("client %d warm-up op %d: %w", id, j, err)
							return
						}
					}
					return
				}
				next := start.Add(interval * time.Duration(id) / time.Duration(nClients))
				for j := 0; j < cfg.OpsPerClient; j++ {
					if d := time.Until(next); d > 0 {
						//lint:ignore sleepretry open-loop pacing to the client's scheduled issue time, not a retry cadence
						time.Sleep(d)
					}
					op := benchOp(id*100003+e13Warmup+j, cfg.DBSize)
					if _, err := clients[id].do(callers[id], op); err != nil {
						errs[id] = fmt.Errorf("client %d op %d: %w", id, j, err)
						return
					}
					lats[id] = append(lats[id], time.Since(next))
					next = next.Add(interval)
				}
			}(i)
		}
		wg.Wait()
	}

	run(true)
	for _, err := range errs {
		if err != nil {
			return E16Point{}, err
		}
	}
	// The warm-up burst runs closed-loop and leaves the heap hot; a
	// collection here keeps the GC debt it built from being paid inside
	// the timed window.
	runtime.GC()
	before := db.Stats()
	start := time.Now()
	run(false)
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return E16Point{}, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		return float64(all[int(p*float64(len(all)-1))].Nanoseconds()) / 1e3
	}
	pt := E16Point{
		Scheme:    name,
		Clients:   nClients,
		Shards:    shards,
		Ops:       len(all),
		Offered:   cfg.PerClientRate * float64(nClients),
		OpsPerSec: float64(len(all)) / elapsed.Seconds(),
		P50Micros: pct(0.50),
		P99Micros: pct(0.99),
	}
	var ops, contended, waitNs uint64
	for i, st := range db.Stats() {
		ds := E16ShardStat{
			Shard:     st.Shard,
			Ops:       st.Ops - before[i].Ops,
			Contended: st.Contended - before[i].Contended,
			WaitMs:    float64(st.WaitNs-before[i].WaitNs) / 1e6,
			HeldMs:    float64(st.HeldNs-before[i].HeldNs) / 1e6,
		}
		ops += ds.Ops
		contended += ds.Contended
		waitNs += st.WaitNs - before[i].WaitNs
		if occ := ds.HeldMs / 1e3 / elapsed.Seconds(); occ > pt.BusiestShardOcc {
			pt.BusiestShardOcc = occ
		}
		pt.ShardStats = append(pt.ShardStats, ds)
	}
	if ops > 0 {
		pt.ContendedFrac = float64(contended) / float64(ops)
	}
	pt.LockWaitMs = float64(waitNs) / 1e6
	return pt, nil
}

// e16Point measures one Protocol II cell (single tree or forest).
func e16Point(name string, shards int, cfg E16Config, nClients int) (E16Point, error) {
	db := seedDBSharded(cfg.DBSize, shards)
	srv := proto2.NewServer(db)
	roots := db.ShardRoots()
	root := db.Root()
	newClient := func(id int) e13Client {
		if shards > 1 {
			return &p2Client{u: proto2.NewForestUser(sig.UserID(id), roots, 1<<62)}
		}
		return &p2Client{u: proto2.NewUser(sig.UserID(id), root, 1<<62)}
	}
	return e16Measure(name, shards, cfg, nClients, db, opHandler(srv.HandleOp), newClient)
}

// e16TrustedPoint measures the unverified floor: plain applies, no
// proofs, no client verification, same paced offered load.
func e16TrustedPoint(cfg E16Config, nClients int) (E16Point, error) {
	db := seedDB(cfg.DBSize)
	handler := func(req any) (any, error) {
		r, ok := req.(*core.OpRequest)
		if !ok {
			return nil, fmt.Errorf("bench: unexpected request %T", req)
		}
		ans, err := db.ApplyPlain(r.Op)
		if err != nil {
			return nil, err
		}
		return &core.OpResponseII{Answer: ans}, nil
	}
	return e16Measure("trusted", 1, cfg, nClients, db, handler, func(int) e13Client { return trustedClient{} })
}

// RunE16 runs the full experiment.
func RunE16(cfg E16Config) (*E16Data, error) {
	d := &E16Data{DBSize: cfg.DBSize, PerClientRate: cfg.PerClientRate, OpsPerClient: cfg.OpsPerClient, Shards: cfg.Shards}
	throughput := map[string]float64{} // "scheme/clients" -> delivered ops/s
	occupancy := map[string]float64{}  // "scheme/clients" -> busiest-shard occupancy
	forest := fmt.Sprintf("P2-forest%d", cfg.Shards)
	schemes := []struct {
		name   string
		shards int
	}{
		{"trusted", 1},
		{"P2-1shard", 1},
		{forest, cfg.Shards},
	}
	for _, s := range schemes {
		for _, n := range cfg.ClientCounts {
			var pt E16Point
			var err error
			if s.name == "trusted" {
				pt, err = e16TrustedPoint(cfg, n)
			} else {
				pt, err = e16Point(s.name, s.shards, cfg, n)
			}
			if err != nil {
				return nil, fmt.Errorf("E16 %s/%d: %w", s.name, n, err)
			}
			d.Points = append(d.Points, pt)
			throughput[fmt.Sprintf("%s/%d", s.name, n)] = pt.OpsPerSec
			occupancy[fmt.Sprintf("%s/%d", s.name, n)] = pt.BusiestShardOcc
		}
	}
	if t16 := throughput[forest+"/16"]; t16 > 0 {
		d.ForestRise64Over16 = throughput[forest+"/64"] / t16
	}
	if t1 := throughput["P2-1shard/64"]; t1 > 0 {
		d.ForestSpeedupAt64 = throughput[forest+"/64"] / t1
	}
	if len(cfg.ClientCounts) > 0 {
		max := cfg.ClientCounts[len(cfg.ClientCounts)-1]
		d.SingleTreeOccAtMax = occupancy[fmt.Sprintf("P2-1shard/%d", max)]
		d.ForestOccAtMax = occupancy[fmt.Sprintf("%s/%d", forest, max)]
	}
	return d, nil
}

// E16 runs the experiment with the default configuration and renders
// it as a table.
func E16() *Table {
	d, err := RunE16(DefaultE16Config())
	if err != nil {
		panic(err)
	}
	return d.Table()
}

// Table renders the data as the E16 exhibit.
func (d *E16Data) Table() *Table {
	t := &Table{
		ID:       "E16",
		Title:    "Merkle forest: verified throughput vs client population, single tree vs sharded root-of-roots",
		PaperRef: "Desideratum 3 (workload preservation) at scale; DESIGN.md \"Merkle forest & cross-shard commits\"",
		Columns:  []string{"scheme", "clients", "offered/s", "ops/s", "p50-us", "p99-us", "contended", "busiest-shard-occ"},
	}
	for _, p := range d.Points {
		contended, occ := "-", "-"
		if p.Scheme != "trusted" {
			contended = fmt.Sprintf("%.2f%%", p.ContendedFrac*100)
			occ = fmt.Sprintf("%.2f%%", p.BusiestShardOcc*100)
		}
		t.AddRow(p.Scheme, p.Clients, int(p.Offered), int(p.OpsPerSec),
			fmt.Sprintf("%.0f", p.P50Micros), fmt.Sprintf("%.0f", p.P99Micros), contended, occ)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("open loop: each client offers %.0f verified ops/s; latency is measured from the scheduled issue time, so queueing is charged, not omitted", d.PerClientRate),
		fmt.Sprintf("forest (%d shards) verified throughput at 64 clients vs 16: %.2fx (acceptance: rises with client count); vs single tree at 64: %.2fx", d.Shards, d.ForestRise64Over16, d.ForestSpeedupAt64),
		fmt.Sprintf("at the largest population the single tree's one global ordered section was held %.2f%% of the wall clock vs %.2f%% for the forest's busiest shard — occupancy is what caps throughput, and the per-shard counters in BENCH_E16.json break it down", d.SingleTreeOccAtMax*100, d.ForestOccAtMax*100))
	return t
}
