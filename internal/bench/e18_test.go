package bench

import "testing"

// TestRunE18CrashMatrix drives the full crash matrix: every
// tamper-before-crash cell must convict from journal replay alone,
// every honest cell must replay exactly the journaled tail (zero loss)
// and finish with zero false alarms, and the during-truncate cells must
// observe the degrade-to-sync flip. The matrix is already CI-sized
// (2 users, 8-op epochs, 8 cells), so the test runs the default config.
func TestRunE18CrashMatrix(t *testing.T) {
	d, err := RunE18(DefaultE18Config())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(e18Points(d.EpochLen)); len(d.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(d.Cells), want)
	}
	if !d.AllTamperedConvicted {
		t.Fatalf("a tampered cell escaped conviction: %+v", d.Cells)
	}
	if !d.ZeroLoss {
		t.Fatalf("an honest cell lost journaled obligations: %+v", d.Cells)
	}
	if d.FalseAlarms != 0 {
		t.Fatalf("%d false alarms across honest cells: %+v", d.FalseAlarms, d.Cells)
	}
	for _, c := range d.Cells {
		if c.Tampered && c.Class == "" {
			t.Errorf("%s: untyped conviction", c.CrashPoint)
		}
		if !c.Tampered && c.ExpectedReplay == 0 {
			t.Errorf("%s: kill left no journaled tail — the cell exercises nothing", c.CrashPoint)
		}
		if c.CrashPoint == "during-truncate" && !c.Degraded {
			t.Errorf("%s: degrade-to-sync not observed", c.CrashPoint)
		}
	}
	if d.MaxReplayMillis <= 0 || d.MaxReplayMillis > d.ReplayBudgetMillis {
		t.Fatalf("replay time out of bounds: %v ms against %v ms budget", d.MaxReplayMillis, d.ReplayBudgetMillis)
	}
}
