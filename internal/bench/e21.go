package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/audit"
	"trustedcvs/internal/backoff"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/driver"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/wire"
)

// E21 measures overload protection and graceful degradation: an
// open-loop arrival process drives offered load past the server's
// capacity, once against an unprotected deployment (legacy semaphore,
// no deadlines) and once against the protected one (bounded priority
// admission queue, adaptive concurrency limit, propagated deadlines).
// Three claims are under test:
//
//  1. Goodput: the unprotected server falls off a cliff — queues grow
//     without bound, every answer arrives after its client gave up,
//     and goodput (operations delivered within their deadline,
//     measured from the op's *scheduled* arrival) collapses below
//     half of peak at ~4x capacity. The protected server sheds the
//     excess with typed refusals before touching any state and holds
//     >= 90% of peak goodput with bounded p99.
//
//  2. Priority: shedding consumes the class ladder bottom-up —
//     background probes are refused first, audit traffic next, user
//     operations last. The refusal fractions per class must be
//     ordered at every overloaded point.
//
//  3. Trust: degradation never weakens detection. Shed operations are
//     atomically refused (the server's op counter advances exactly
//     once per delivered success — zero half-applied ops) and create
//     no audit obligations; adversary trials under flood at every
//     load point still convict with a typed detection, honest runs
//     raise zero false alarms, and every obligation drains
//     (Submitted == Audited) after seal.
//
// Per-operation server work is padded to a fixed synthetic service
// time so capacity is a controlled constant (MaxConcurrent/Service)
// rather than a CPU-noise measurement — the experiment is about
// queueing and shedding behavior, not op microperformance.

// E21Config parameterizes RunE21.
type E21Config struct {
	// DBSize is the number of preloaded keys.
	DBSize int
	// Service is the synthetic per-request service time appended to
	// every admitted request (refused requests never reach it).
	Service time.Duration
	// MaxConcurrent bounds in-flight handlers in both modes: the
	// unprotected semaphore and the protected admission MaxLimit.
	// Capacity is MaxConcurrent/Service.
	MaxConcurrent int
	// QueueDepth is the protected admission queue bound.
	QueueDepth int
	// Target is the AIMD latency target.
	Target time.Duration
	// Deadline is the client's end-to-end budget: a delivered answer
	// counts toward goodput only within Deadline of its scheduled
	// arrival. Protected clients propagate it in the frame header.
	Deadline time.Duration
	// Window is the open-loop measurement window per sweep cell.
	Window time.Duration
	// Workers is the load-generator pool size per cell.
	Workers int
	// Factors are the offered-load multiples of measured capacity.
	Factors []float64
	// TrialFactors are the load points the adversary trials run at.
	TrialFactors []float64
	// TrialUsers / TrialEpochLen / TrialFlood shape the verified
	// epoch-audit deployments of the trial phase: TrialFlood is the
	// flood worker count pressuring the server during each trial.
	TrialUsers    int
	TrialEpochLen uint64
	TrialFlood    int
}

// DefaultE21Config is what E21() and cmd/tcvs-bench run.
func DefaultE21Config() E21Config {
	return E21Config{
		DBSize: 300, Service: 1500 * time.Microsecond, MaxConcurrent: 8,
		QueueDepth: 64, Target: 20 * time.Millisecond,
		Deadline: 250 * time.Millisecond, Window: 2500 * time.Millisecond,
		Workers: 192, Factors: []float64{0.5, 1, 2, 4},
		// 128 flood connections against a 64-deep queue: the trials run
		// with the admission queue saturated and refusals actually
		// happening, not merely with the service slots busy.
		TrialFactors: []float64{1, 2, 4},
		TrialUsers:   3, TrialEpochLen: 24, TrialFlood: 128,
	}
}

// E21Point is one measured (mode, factor) cell of the open-loop sweep.
type E21Point struct {
	Mode             string  `json:"mode"` // unprotected | protected
	Factor           float64 `json:"factor"`
	OfferedOpsPerSec float64 `json:"offered_ops_per_sec"`
	// Attempted counts scheduled arrivals per class; Delivered the
	// answered ones; Missed arrivals the window closed on before the
	// (backlogged) generator could even issue them.
	Attempted map[string]uint64 `json:"attempted"`
	Delivered map[string]uint64 `json:"delivered"`
	Missed    uint64            `json:"missed"`
	// Shed / Expired count typed refusals per class as the clients
	// observed them; RefusedFrac is (shed+expired+missed-at-issue)
	// over attempted — the per-class starvation metric the priority
	// ordering is judged on.
	Shed        map[string]uint64  `json:"shed"`
	Expired     map[string]uint64  `json:"expired"`
	RefusedFrac map[string]float64 `json:"refused_frac"`
	Faults      uint64             `json:"transport_faults"`
	// Goodput counts user operations delivered within Deadline of
	// their scheduled arrival; latency percentiles cover every
	// delivered user op (late ones included — that is the cliff).
	WithinDeadline   uint64  `json:"within_deadline"`
	GoodputOpsPerSec float64 `json:"goodput_ops_per_sec"`
	P50Millis        float64 `json:"p50_ms"`
	P99Millis        float64 `json:"p99_ms"`
	// Atomicity: the server's op counter must advance exactly once
	// per delivered user success — shed ops touch nothing.
	ServerOpsApplied  uint64 `json:"server_ops_applied"`
	UserOpSuccesses   uint64 `json:"user_op_successes"`
	AtomicSheds       bool   `json:"atomic_sheds"`
	AdmissionLimit    int    `json:"admission_limit,omitempty"`
	QueueHighWater    int    `json:"queue_high_water,omitempty"`
	ServerShedTotal   uint64 `json:"server_shed_total,omitempty"`
	ServerExpireTotal uint64 `json:"server_expire_total,omitempty"`
}

// E21Trial is one verified epoch-audit deployment run under flood at
// one load point, honest or adversarial.
type E21Trial struct {
	Factor     float64 `json:"factor"`
	Behavior   string  `json:"behavior"` // honest | fork
	Detected   bool    `json:"detected"`
	Class      string  `json:"class,omitempty"`
	FalseAlarm bool    `json:"false_alarm"`
	Submitted  uint64  `json:"obligations_submitted"`
	Audited    uint64  `json:"obligations_audited"`
	Dangling   uint64  `json:"obligations_dangling"`
	ShedDuring uint64  `json:"sheds_during"`
	MaxStretch int     `json:"max_stretch"` // brownout ceiling reached
}

// E21Data is the full experiment result, serialized to BENCH_E21.json
// by cmd/tcvs-bench.
type E21Data struct {
	DBSize            int        `json:"db_size"`
	ServiceMicros     int64      `json:"service_us"`
	MaxConcurrent     int        `json:"max_concurrent"`
	QueueDepth        int        `json:"queue_depth"`
	DeadlineMillis    int64      `json:"deadline_ms"`
	WindowMillis      int64      `json:"window_ms"`
	Workers           int        `json:"workers"`
	CapacityOpsPerSec float64    `json:"capacity_ops_per_sec"`
	Points            []E21Point `json:"points"`
	// PeakGoodput is each mode's best goodput across the sweep; the
	// acceptance ratios are taken against a mode's own peak.
	PeakGoodput         map[string]float64 `json:"peak_goodput"`
	UnprotectedAtTop    float64            `json:"unprotected_goodput_frac_at_top"`
	ProtectedAtTop      float64            `json:"protected_goodput_frac_at_top"`
	UnprotectedCollapse bool               `json:"unprotected_collapse"` // top-factor goodput < 50% of peak
	ProtectedHolds      bool               `json:"protected_holds"`      // top-factor goodput >= 90% of peak
	ProtectedP99Bounded bool               `json:"protected_p99_bounded"`
	ShedInOrder         bool               `json:"shed_in_order"`
	AllAtomic           bool               `json:"all_atomic"`
	Trials              []E21Trial         `json:"trials"`
	AllConvicted        bool               `json:"all_convicted"`
	FalseAlarms         int                `json:"false_alarms"`
	ZeroDangling        bool               `json:"zero_dangling"`
}

// WriteJSON writes the result in the checked-in BENCH_E21.json format.
func (d *E21Data) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// e21Listen deploys hs behind TCP with the synthetic service pad. In
// protected mode the admission controller, the priority classifier and
// deadline-aware dispatch are armed; unprotected mode is the legacy
// semaphore with no deadline handling.
func e21Listen(cfg E21Config, hs server.Server, protected bool) (*transport.Server, *transport.Admission, error) {
	inner := driver.NewHandler(hs, cvs.NewStore())
	handler := func(req any) (any, error) {
		resp, err := inner(req)
		if cfg.Service > 0 {
			time.Sleep(cfg.Service)
		}
		return resp, err
	}
	opts := transport.Options{IdleTimeout: -1, MaxConcurrent: cfg.MaxConcurrent}
	var adm *transport.Admission
	if protected {
		adm = transport.NewAdmission(transport.AdmissionOptions{
			Target: cfg.Target, MaxLimit: cfg.MaxConcurrent, QueueDepth: cfg.QueueDepth,
		})
		opts.Admission = adm
		opts.Classify = driver.Classify
		opts.HandlerDeadline = driver.WrapDeadline(handler)
	}
	ts, err := transport.ListenOpts("127.0.0.1:0", handler, opts)
	if err != nil {
		return nil, nil, err
	}
	return ts, adm, nil
}

// e21Capacity measures peak capacity with a short closed loop of pure
// user operations against the unprotected deployment.
func e21Capacity(cfg E21Config) (float64, error) {
	db := seedDB(cfg.DBSize)
	ts, _, err := e21Listen(cfg, server.NewP2(db), false)
	if err != nil {
		return 0, err
	}
	defer ts.Close()
	W := 2 * cfg.MaxConcurrent
	done := make([]uint64, W)
	errs := make([]error, W)
	var wg sync.WaitGroup
	start := time.Now()
	end := start.Add(time.Second)
	for i := 0; i < W; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := transport.Dial(ts.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			for k := i; time.Now().Before(end); k += W {
				req := &core.OpRequest{User: sig.UserID(1000 + i), Op: benchOp(k, cfg.DBSize)}
				if _, err := conn.Call(req); err != nil {
					errs[i] = err
					return
				}
				done[i]++
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var total uint64
	for i, n := range done {
		if errs[i] != nil {
			return 0, fmt.Errorf("capacity worker %d: %w", i, errs[i])
		}
		total += n
	}
	return float64(total) / elapsed.Seconds(), nil
}

// e21Request maps arrival k onto the offered mix: 80% user write ops,
// 10% audit-class backup fetches, 10% background probes (a request
// type the handler does not serve — the classifier's bottom class).
func e21Request(k, worker, dbSize int) (transport.Priority, any) {
	switch k % 10 {
	case 8:
		return transport.PriorityAudit, &core.GetBackupsRequest{}
	case 9:
		return transport.PriorityBackground, &core.SyncRequest{From: sig.UserID(1000 + worker), Round: uint64(k)}
	default:
		return transport.PriorityUser, &core.OpRequest{User: sig.UserID(1000 + worker), Op: benchOp(k, dbSize)}
	}
}

// e21Counts is one generator worker's tally.
type e21Counts struct {
	attempted [transport.NumPriorities]uint64
	delivered [transport.NumPriorities]uint64
	shed      [transport.NumPriorities]uint64
	expired   [transport.NumPriorities]uint64
	missed    uint64
	faults    uint64
	within    uint64
	lats      []time.Duration
}

// e21Cell runs one open-loop sweep cell: Workers generators issue the
// mixed workload on the shared arrival grid (arrival k is scheduled at
// start + k/rate and charged latency from that instant, issued or
// not), against a fresh deployment in the given mode.
func e21Cell(cfg E21Config, protected bool, factor, capacity float64) (E21Point, error) {
	db := seedDB(cfg.DBSize)
	ts, adm, err := e21Listen(cfg, server.NewP2(db), protected)
	if err != nil {
		return E21Point{}, err
	}
	defer ts.Close()

	rate := factor * capacity
	W := cfg.Workers
	counts := make([]e21Counts, W)
	errs := make([]error, W)
	startCtr := db.Ctr()
	runtime.GC()
	start := time.Now()
	end := start.Add(cfg.Window)
	var wg sync.WaitGroup
	for i := 0; i < W; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", ts.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer func() { nc.Close() }()
			wc := wire.NewConn(nc)
			c := &counts[i]
			for k := i; ; k += W {
				sched := start.Add(time.Duration(float64(k) / rate * float64(time.Second)))
				if sched.After(end) {
					break
				}
				class, req := e21Request(k, i, cfg.DBSize)
				c.attempted[class]++
				now := time.Now()
				if now.After(end) {
					// The generator's backlog outlived the window: this
					// arrival was never even issued. Count it — silently
					// dropping it would flatter the unprotected cliff.
					c.missed++
					continue
				}
				if sched.After(now) {
					//lint:ignore sleepretry open-loop pacing to the op's scheduled arrival time, not a retry cadence
					time.Sleep(time.Until(sched))
					now = time.Now()
				}
				var budget time.Duration
				if protected {
					// The budget is what remains of the op's end-to-end
					// deadline; a backlogged generator gives up client-side
					// exactly as a real caller would.
					if budget = sched.Add(cfg.Deadline).Sub(now); budget <= 0 {
						c.expired[class]++
						continue
					}
				}
				_, err := wc.CallBudget(req, budget)
				lat := time.Since(sched)
				switch {
				case errors.Is(err, wire.ErrOverloaded):
					c.shed[class]++
				case errors.Is(err, wire.ErrDeadlineExceeded):
					c.expired[class]++
				case err == nil, class != transport.PriorityUser && errors.Is(err, wire.ErrRemote):
					// Audit/background probes are answered with a plain
					// remote refusal (unsupported under P2 / unknown type);
					// delivery of the verdict is the outcome being measured.
					c.delivered[class]++
					if class == transport.PriorityUser {
						c.lats = append(c.lats, lat)
						if lat <= cfg.Deadline {
							c.within++
						}
					}
				case errors.Is(err, wire.ErrRemote):
					c.faults++ // user op rejected by the handler: not load-related
				default:
					// Transport fault: the stream may be poisoned; redial.
					c.faults++
					nc.Close()
					nc2, derr := net.Dial("tcp", ts.Addr())
					if derr != nil {
						errs[i] = derr
						return
					}
					nc, wc = nc2, wire.NewConn(nc2)
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return E21Point{}, fmt.Errorf("worker %d: %w", i, err)
		}
	}

	mode := "unprotected"
	if protected {
		mode = "protected"
	}
	pt := E21Point{
		Mode: mode, Factor: factor, OfferedOpsPerSec: rate,
		Attempted: map[string]uint64{}, Delivered: map[string]uint64{},
		Shed: map[string]uint64{}, Expired: map[string]uint64{},
		RefusedFrac: map[string]float64{},
	}
	var all []time.Duration
	var perClass [transport.NumPriorities]struct{ att, del, shed, exp uint64 }
	for i := range counts {
		c := &counts[i]
		for p := transport.Priority(0); p < transport.NumPriorities; p++ {
			perClass[p].att += c.attempted[p]
			perClass[p].del += c.delivered[p]
			perClass[p].shed += c.shed[p]
			perClass[p].exp += c.expired[p]
		}
		pt.Missed += c.missed
		pt.Faults += c.faults
		pt.WithinDeadline += c.within
		all = append(all, c.lats...)
	}
	for p := transport.Priority(0); p < transport.NumPriorities; p++ {
		if perClass[p].att == 0 {
			continue
		}
		pt.Attempted[p.String()] = perClass[p].att
		pt.Delivered[p.String()] = perClass[p].del
		pt.Shed[p.String()] = perClass[p].shed
		pt.Expired[p.String()] = perClass[p].exp
		pt.RefusedFrac[p.String()] = float64(perClass[p].att-perClass[p].del) / float64(perClass[p].att)
	}
	pt.GoodputOpsPerSec = float64(pt.WithinDeadline) / cfg.Window.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		pct := func(p float64) float64 {
			return float64(all[int(p*float64(len(all)-1))]) / float64(time.Millisecond)
		}
		pt.P50Millis = pct(0.50)
		pt.P99Millis = pct(0.99)
	}
	pt.ServerOpsApplied = db.Ctr() - startCtr
	pt.UserOpSuccesses = perClass[transport.PriorityUser].del
	pt.AtomicSheds = pt.ServerOpsApplied == pt.UserOpSuccesses
	if adm != nil {
		st := adm.Stats()
		pt.AdmissionLimit = st.Limit
		pt.QueueHighWater = st.HighWater
		for p := transport.Priority(0); p < transport.NumPriorities; p++ {
			pt.ServerShedTotal += st.Shed[p]
			pt.ServerExpireTotal += st.Expired[p]
		}
	}
	return pt, nil
}

// e21Flood pressures a protected deployment with counter-neutral
// traffic (audit-class backup fetches and background probes) at the
// given rate until stop closes. Counter-neutral matters: the trial's
// verified clients run the closure check over the whole history, and
// a flood that advanced the op counter with transitions no auditor
// covers would fail closure — a false alarm manufactured by the
// harness, not the server.
func e21Flood(cfg E21Config, addr string, rate float64, stop <-chan struct{}, wg *sync.WaitGroup) {
	F := cfg.TrialFlood
	for i := 0; i < F; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer func() { nc.Close() }()
			wc := wire.NewConn(nc)
			start := time.Now()
			for k := i; ; k += F {
				sched := start.Add(time.Duration(float64(k) / rate * float64(time.Second)))
				if d := time.Until(sched); d > 0 {
					t := time.NewTimer(d)
					select {
					case <-stop:
						t.Stop()
						return
					case <-t.C:
					}
				}
				select {
				case <-stop:
					return
				default:
				}
				var req any = &core.GetBackupsRequest{}
				if k%3 == 0 {
					req = &core.SyncRequest{From: sig.UserID(2000 + i), Round: uint64(k)}
				}
				if _, err := wc.CallBudget(req, cfg.Deadline); err != nil && !errors.Is(err, wire.ErrRemote) &&
					!errors.Is(err, wire.ErrOverloaded) && !errors.Is(err, wire.ErrDeadlineExceeded) {
					// Transport fault (likely shutdown): redial or stop.
					nc.Close()
					nc2, derr := net.Dial("tcp", addr)
					if derr != nil {
						return
					}
					nc, wc = nc2, wire.NewConn(nc2)
				}
			}
		}(i)
	}
}

// e21TrialRun deploys a verified epoch-audit cluster over a protected
// server, floods it at factor x capacity, and runs either the honest
// control (no detection, every obligation drained) or the Fork
// adversary (typed conviction required despite the overload).
func e21TrialRun(cfg E21Config, factor, capacity float64, malicious bool) (E21Trial, error) {
	users := cfg.TrialUsers
	epochLen := cfg.TrialEpochLen
	trigger := epochLen + epochLen/2
	db := vdb.New(0)
	honest := server.NewP2(db)
	var srv server.Server = honest
	if malicious {
		srv = adversary.Wrap(honest, adversary.Config{
			Kind: adversary.Fork, TriggerOp: trigger,
			GroupB: map[sig.UserID]bool{sig.UserID(users - 1): true},
		})
	}
	ts, adm, err := e21Listen(cfg, srv, true)
	if err != nil {
		return E21Trial{}, err
	}
	defer ts.Close()
	hub, err := broadcast.ListenHub("127.0.0.1:0")
	if err != nil {
		return E21Trial{}, err
	}
	defer hub.Close()

	var clients []*driver.Client
	closeAll := func() {
		for _, dc := range clients {
			dc.Close()
		}
	}
	root := db.Root()
	for i := 0; i < users; i++ {
		conn, err := transport.Dial(ts.Addr())
		if err != nil {
			closeAll()
			return E21Trial{}, err
		}
		u := proto2.NewUser(sig.UserID(i), root, 1<<62)
		dc, err := driver.NewP2Epoch(u, conn, broadcast.DialHubResume(hub.Addr()), users, epochLen, 0)
		if err != nil {
			closeAll()
			return E21Trial{}, err
		}
		// Arm brownout so sustained audit backlog under flood widens
		// the admission window instead of hard-blocking; MaxStretch in
		// the record shows how far it actually went.
		dc.Audit().SetBrownout(3)
		clients = append(clients, dc)
	}
	var closeOnce sync.Once
	sever := func() { closeOnce.Do(closeAll) }
	defer sever()

	stop := make(chan struct{})
	var fwg sync.WaitGroup
	e21Flood(cfg, ts.Addr(), factor*capacity, stop, &fwg)
	defer func() { close(stop); fwg.Wait() }()

	tr := E21Trial{Factor: factor, Behavior: "honest"}
	if malicious {
		tr.Behavior = "fork"
	}
	perUser := int(trigger+2*epochLen)/users + 1
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for j := 0; j < perUser; j++ {
				op := &vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("t%d-%d", u, j), Val: []byte("v")}}}
				if _, err := clients[u].Do(op); err != nil {
					return // detection mirrored into the hot path; judged below
				}
			}
			clients[u].Seal()
		}(u)
	}

	if malicious {
		// Same conviction dance as E17's trials: a one-sided conviction
		// stalls honest peers at admission, so once a typed failure is
		// latched the stalled workload is cut loose.
		wdone := make(chan struct{})
		go func() { wg.Wait(); close(wdone) }()
		var eaf *audit.EpochAuditFailure
		deadline := time.Now().Add(90 * time.Second)
		poll := backoff.Poll(5 * time.Millisecond)
	waitLoop:
		for {
			select {
			case <-wdone:
				eaf, err = e17AwaitDetection(clients, 90*time.Second)
				break waitLoop
			default:
			}
			if eaf, _ = e17PollDetection(clients, 0); eaf != nil {
				select {
				case <-wdone:
				case <-time.After(2 * time.Second):
					sever()
					<-wdone
				}
				break waitLoop
			}
			if time.Now().After(deadline) {
				err = errors.New("workload stalled without a detection")
				break waitLoop
			}
			poll.Sleep()
		}
		if err != nil {
			return E21Trial{}, fmt.Errorf("fork@%.0fx: %w", factor, err)
		}
		tr.Detected = true
		if de, ok := core.AsDetection(eaf); ok {
			tr.Class = de.Class.String()
		}
	} else {
		wg.Wait()
		for _, dc := range clients {
			if err := dc.WaitSealed(90 * time.Second); err != nil {
				tr.FalseAlarm = true
			}
		}
	}
	for _, dc := range clients {
		st := dc.Audit().Stats()
		tr.Submitted += st.Submitted
		tr.Audited += st.Audited
		if st.MaxStretch > tr.MaxStretch {
			tr.MaxStretch = st.MaxStretch
		}
	}
	if !malicious {
		// A convicted auditor legitimately stops mid-queue; only the
		// honest control demands a full drain.
		tr.Dangling = tr.Submitted - tr.Audited
	}
	st := adm.Stats()
	for p := transport.Priority(0); p < transport.NumPriorities; p++ {
		tr.ShedDuring += st.Shed[p] + st.Expired[p]
	}
	return tr, nil
}

// RunE21 runs the full experiment.
func RunE21(cfg E21Config) (*E21Data, error) {
	d := &E21Data{
		DBSize: cfg.DBSize, ServiceMicros: cfg.Service.Microseconds(),
		MaxConcurrent: cfg.MaxConcurrent, QueueDepth: cfg.QueueDepth,
		DeadlineMillis: cfg.Deadline.Milliseconds(), WindowMillis: cfg.Window.Milliseconds(),
		Workers: cfg.Workers, PeakGoodput: map[string]float64{},
	}
	capacity, err := e21Capacity(cfg)
	if err != nil {
		return nil, fmt.Errorf("E21 capacity: %w", err)
	}
	d.CapacityOpsPerSec = capacity

	d.AllAtomic, d.ShedInOrder = true, true
	top := cfg.Factors[len(cfg.Factors)-1]
	var topPoint = map[string]E21Point{}
	for _, mode := range []string{"unprotected", "protected"} {
		for _, f := range cfg.Factors {
			pt, err := e21Cell(cfg, mode == "protected", f, capacity)
			if err != nil {
				return nil, fmt.Errorf("E21 %s/%gx: %w", mode, f, err)
			}
			d.Points = append(d.Points, pt)
			if pt.GoodputOpsPerSec > d.PeakGoodput[mode] {
				d.PeakGoodput[mode] = pt.GoodputOpsPerSec
			}
			if f == top {
				topPoint[mode] = pt
			}
			if mode == "protected" {
				d.AllAtomic = d.AllAtomic && pt.AtomicSheds
				if pt.ServerShedTotal > 0 {
					const eps = 0.02
					fr := pt.RefusedFrac
					if fr["background"]+eps < fr["audit"] || fr["audit"]+eps < fr["user"] {
						d.ShedInOrder = false
					}
				}
			}
		}
	}
	if p := d.PeakGoodput["unprotected"]; p > 0 {
		d.UnprotectedAtTop = topPoint["unprotected"].GoodputOpsPerSec / p
	}
	if p := d.PeakGoodput["protected"]; p > 0 {
		d.ProtectedAtTop = topPoint["protected"].GoodputOpsPerSec / p
	}
	d.UnprotectedCollapse = d.UnprotectedAtTop < 0.5
	d.ProtectedHolds = d.ProtectedAtTop >= 0.9
	d.ProtectedP99Bounded = topPoint["protected"].P99Millis <= float64(cfg.Deadline.Milliseconds())
	// The ordering must also be strict where it matters most: at the
	// top factor the bottom class starves harder than user ops.
	if tp := topPoint["protected"]; tp.RefusedFrac["background"] <= tp.RefusedFrac["user"] {
		d.ShedInOrder = false
	}

	d.AllConvicted, d.ZeroDangling = true, true
	for _, f := range cfg.TrialFactors {
		for _, malicious := range []bool{false, true} {
			tr, err := e21TrialRun(cfg, f, capacity, malicious)
			if err != nil {
				return nil, err
			}
			d.Trials = append(d.Trials, tr)
			if tr.Behavior == "fork" && !tr.Detected {
				d.AllConvicted = false
			}
			if tr.FalseAlarm {
				d.FalseAlarms++
			}
			if tr.Dangling > 0 {
				d.ZeroDangling = false
			}
		}
	}
	return d, nil
}

// E21 runs the experiment with the default configuration and renders
// it as a table.
func E21() *Table {
	d, err := RunE21(DefaultE21Config())
	if err != nil {
		panic(err)
	}
	return d.Table()
}

// Table renders the data as the E21 exhibit.
func (d *E21Data) Table() *Table {
	t := &Table{
		ID:       "E21",
		Title:    "Overload protection: open-loop sweep to 4x capacity, unprotected vs protected",
		PaperRef: "robustness of the detection guarantees at saturation; DESIGN.md \"Overload & graceful degradation\"",
		Columns:  []string{"mode", "xcap", "offered/s", "goodput/s", "p50-ms", "p99-ms", "refused u/a/b %", "atomic"},
	}
	for _, p := range d.Points {
		fr := func(c string) string { return fmt.Sprintf("%.0f", 100*p.RefusedFrac[c]) }
		t.AddRow(p.Mode, p.Factor, int(p.OfferedOpsPerSec), int(p.GoodputOpsPerSec),
			fmt.Sprintf("%.1f", p.P50Millis), fmt.Sprintf("%.1f", p.P99Millis),
			fr("user")+"/"+fr("audit")+"/"+fr("background"), boolMark(p.AtomicSheds))
	}
	for _, tr := range d.Trials {
		verdict := "clean"
		if tr.Behavior != "honest" {
			verdict = tr.Class
		}
		t.AddRow(fmt.Sprintf("trial %s", tr.Behavior), tr.Factor, "-", "-",
			fmt.Sprintf("shed=%d", tr.ShedDuring),
			fmt.Sprintf("oblig=%d/%d", tr.Audited, tr.Submitted),
			verdict, boolMark(!tr.FalseAlarm && tr.Dangling == 0))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("capacity %.0f ops/s (MaxConcurrent %d x %dus synthetic service); goodput counts user ops delivered within %dms of their scheduled open-loop arrival",
			d.CapacityOpsPerSec, d.MaxConcurrent, d.ServiceMicros, d.DeadlineMillis),
		fmt.Sprintf("at %gx capacity the unprotected server delivers %.0f%% of its peak goodput (acceptance: < 50%%); the protected server holds %.0f%% (acceptance: >= 90%%) with p99 bounded by the deadline: %v",
			4.0, 100*d.UnprotectedAtTop, 100*d.ProtectedAtTop, d.ProtectedP99Bounded),
		fmt.Sprintf("classes shed in priority order (background first, user last): %v; every shed atomically refused (server counter == delivered successes): %v",
			d.ShedInOrder, d.AllAtomic),
		fmt.Sprintf("adversary trials under flood: all convicted %v, false alarms %d, dangling obligations after drain: zero=%v",
			d.AllConvicted, d.FalseAlarms, d.ZeroDangling))
	return t
}
