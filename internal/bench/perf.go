package bench

import (
	"fmt"
	"time"

	"trustedcvs/internal/baseline"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto1"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/sim"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/wire"
	"trustedcvs/internal/workload"
)

// E6 reproduces the workload-preservation argument of Sections 2.2.3,
// 4.2 and 4.3: messages per operation and the forced wait between one
// user's back-to-back operations, for the token-passing strawman and
// the real protocols.
func E6() *Table {
	t := &Table{
		ID:       "E6",
		Title:    "Workload preservation: per-op messages, wire bytes, and forced waiting for back-to-back ops",
		PaperRef: "Section 2.2.3 (strawman), 4.2 (Protocol I), 4.3 (Protocol II)",
		Columns:  []string{"scheme", "users", "msgs/op", "wire-bytes/op", "turns-before-2nd-op", "needs-PKI", "blocking-3rd-msg"},
	}
	for _, n := range []int{2, 8, 32} {
		trace := genTrace(n, 100, int64(n))
		r1 := sim.Run(sim.Config{Protocol: server.P1, Users: n, K: 0, Trace: trace, MeasureBytes: true})
		r2 := sim.Run(sim.Config{Protocol: server.P2, Users: n, K: 0, Trace: trace, MeasureBytes: true})
		if r1.Err != nil || r2.Err != nil {
			panic(fmt.Sprint(r1.Err, r2.Err))
		}
		perOp := func(r *sim.Result) float64 {
			return float64(r.Messages.UserToServer+r.Messages.ServerToUser) / float64(r.TotalOps)
		}
		bytesOp := func(r *sim.Result) int {
			return (r.Bytes.UserToServer + r.Bytes.ServerToUser) / r.TotalOps
		}
		t.AddRow("trusted server", n, 2.0, "(no proofs)", 0, "no", "no")
		t.AddRow("token passing (2.2.3)", n, 2.0, "(like P-I)", baseline.WaitForSecondOp(n), "yes", "no")
		t.AddRow("Protocol I", n, perOp(r1), bytesOp(r1), 0, "yes", "yes")
		t.AddRow("Protocol II", n, perOp(r2), bytesOp(r2), 0, "no", "no")
	}
	t.Notes = append(t.Notes,
		"token passing forces a user to wait for every other user's turn before its second op — the workload-preservation violation that motivates the protocols",
		"Protocol II removes both Protocol I's blocking third message and its PKI requirement")
	return t
}

// E7 measures protocol overhead against the trusted-server floor
// (desideratum 3 / c-workload preservation): operations per second for
// unverified execution vs Protocols I and II, across database sizes.
func E7() *Table {
	t := &Table{
		ID:       "E7",
		Title:    "Throughput: trusted server vs Protocol I vs Protocol II (in-process)",
		PaperRef: "Desideratum 3 / Section 2.2.3 (c-workload preservation)",
		Columns:  []string{"db-size", "trusted-ops/s", "P1-ops/s", "P2-ops/s", "P1-slowdown", "P2-slowdown"},
	}
	for _, size := range []int{1_000, 10_000, 100_000} {
		ops := 2000
		if size >= 100_000 {
			ops = 500
		}
		trusted := throughputTrusted(size, ops)
		p1 := throughputP1(size, ops)
		p2 := throughputP2(size, ops)
		t.AddRow(size, int(trusted), int(p1), int(p2),
			fmt.Sprintf("%.1fx", trusted/p1), fmt.Sprintf("%.1fx", trusted/p2))
	}
	t.Notes = append(t.Notes,
		"per-op verification costs one VO build + one replay (plus two signatures under Protocol I) — a constant factor over the trusted server, independent of history length",
		"Protocol II beats Protocol I by avoiding per-op signatures and the blocking acknowledgement")
	return t
}

func seedDB(size int) *vdb.DB {
	db := vdb.New(0)
	const chunk = 500
	for i := 0; i < size; i += chunk {
		op := &vdb.WriteOp{}
		for j := i; j < i+chunk && j < size; j++ {
			op.Puts = append(op.Puts, vdb.KV{Key: fmt.Sprintf("key-%08d", j), Val: []byte("seed")})
		}
		if err := db.Preload(op); err != nil {
			panic(err)
		}
	}
	return db
}

func benchOp(i, size int) vdb.Op {
	return &vdb.WriteOp{Puts: []vdb.KV{{
		Key: fmt.Sprintf("key-%08d", (i*7919)%size),
		Val: []byte(fmt.Sprintf("update-%d", i)),
	}}}
}

func throughputTrusted(size, ops int) float64 {
	db := seedDB(size)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := db.ApplyPlain(benchOp(i, size)); err != nil {
			panic(err)
		}
	}
	return float64(ops) / time.Since(start).Seconds()
}

func throughputP1(size, ops int) float64 {
	db := seedDB(size)
	signers, ring, err := sig.DeterministicSigners(2, 1)
	if err != nil {
		panic(err)
	}
	srv := proto1.NewServer(db, proto1.Initialize(signers[0], db.Root()))
	users := []*proto1.User{proto1.NewUser(signers[0], ring, 1<<62), proto1.NewUser(signers[1], ring, 1<<62)}
	start := time.Now()
	for i := 0; i < ops; i++ {
		u := users[i%2]
		op := benchOp(i, size)
		resp, err := srv.HandleOp(u.Request(op))
		if err != nil {
			panic(err)
		}
		ack, _, err := u.HandleResponse(op, resp)
		if err != nil {
			panic(err)
		}
		if err := srv.HandleAck(ack); err != nil {
			panic(err)
		}
	}
	return float64(ops) / time.Since(start).Seconds()
}

func throughputP2(size, ops int) float64 {
	db := seedDB(size)
	srv := proto2.NewServer(db)
	users := []*proto2.User{
		proto2.NewUser(0, db.Root(), 1<<62),
		proto2.NewUser(1, db.Root(), 1<<62),
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		u := users[i%2]
		op := benchOp(i, size)
		resp, err := srv.HandleOp(u.Request(op))
		if err != nil {
			panic(err)
		}
		if _, err := u.HandleResponse(op, resp); err != nil {
			panic(err)
		}
	}
	return float64(ops) / time.Since(start).Seconds()
}

// E8 measures synchronization and state costs: broadcast bytes per
// sync round vs population size, Protocol III's per-epoch server
// storage, and the (constant) per-user protocol state — desideratum 5.
func E8() *Table {
	t := &Table{
		ID:       "E8",
		Title:    "Synchronization and state costs vs number of users",
		PaperRef: "Sections 4.2-4.4, desideratum 5 (bounded user state)",
		Columns:  []string{"users", "sync-bytes(P1)", "sync-bytes(P2)", "p3-backup-bytes/epoch", "user-state-bytes", "state-growth-with-history"},
	}
	reqSize, err := wire.Size(&core.SyncRequest{From: 1, Round: 1})
	if err != nil {
		panic(err)
	}
	repISize, err := wire.Size(core.SyncReportI{User: 1, LCtr: 1, GCtr: 1})
	if err != nil {
		panic(err)
	}
	repIISize, err := wire.Size(core.SyncReportII{User: 1})
	if err != nil {
		panic(err)
	}
	backupSize, err := wire.Size(&core.EpochBackup{User: 1, Sig: make(sig.Signature, 64)})
	if err != nil {
		panic(err)
	}
	// Per-user protocol state, serialized: the Protocol II registers.
	stateSize, err := wire.Size(core.Registers{})
	if err != nil {
		panic(err)
	}
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		t.AddRow(n,
			reqSize+n*repISize,
			reqSize+n*repIISize,
			n*backupSize,
			stateSize,
			"none (verified: registers are fixed-size)")
	}
	t.Notes = append(t.Notes,
		"sync traffic is linear in n (one report per user); per-user state is a constant independent of operations performed",
		fmt.Sprintf("register state serializes to %d bytes whether the history has 10 or 10^9 operations", stateSize))
	return t
}

func genTrace(users, ops int, seed int64) *workload.Trace {
	return workload.Generate(workload.Config{
		Users: users, Files: 16, Ops: ops, WriteRatio: 0.4, FilesPerOp: 2, Seed: seed,
	})
}

// All runs every experiment in order: E1–E8 reproduce the paper's
// exhibits, E9–E11 ablate DESIGN.md's design choices, E12 measures the
// fault-localization extension, E13 measures the pipelined transport
// under concurrent TCP clients, E14 measures availability and recovery
// under fault injection, E15 measures witness replication: failover by
// promotion and fork conviction by gossip, E16 measures the Merkle
// forest's throughput scaling with client count, E17 measures the
// epoch-batched async audit: verified throughput off the hot path
// with detection within one epoch, E18 runs the crash matrix for the
// durable audit journal: tamper-before-crash conviction after replay,
// zero-loss recovery, and the degrade-to-sync transition, E21 measures
// overload protection: the open-loop goodput sweep to 4x capacity with
// priority shedding and adversary conviction under flood.
func All() []*Table {
	return []*Table{E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), E9(), E10(), E11(), E12(), E13(), E14(), E15(), E16(), E17(), E18(), E21()}
}

// ByID returns one experiment's runner.
func ByID(id string) (func() *Table, bool) {
	m := map[string]func() *Table{
		"E1": E1, "E2": E2, "E3": E3, "E4": E4,
		"E5": E5, "E6": E6, "E7": E7, "E8": E8,
		"E9": E9, "E10": E10, "E11": E11, "E12": E12,
		"E13": E13, "E14": E14, "E15": E15, "E16": E16, "E17": E17,
		"E18": E18, "E21": E21,
	}
	f, ok := m[id]
	return f, ok
}
