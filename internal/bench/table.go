// Package bench implements the experiment harness: one runner per
// exhibit of the paper (E1–E8, see DESIGN.md §2), each regenerating a
// results table whose *shape* reproduces the corresponding figure,
// theorem or design claim. cmd/tcvs-bench prints them; bench_test.go
// wraps them in testing.B benchmarks; EXPERIMENTS.md records the
// outcomes.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result table.
type Table struct {
	ID       string
	Title    string
	PaperRef string
	Columns  []string
	Rows     [][]string
	Notes    []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	if t.PaperRef != "" {
		fmt.Fprintf(w, "reproduces: %s\n", t.PaperRef)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// boolMark renders pass/fail cells uniformly.
func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
