package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/backoff"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/driver"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
)

// E14 measures availability and recovery under injected faults: a full
// Protocol II deployment (real TCP, resilient reconnecting clients,
// resumable broadcast hub, sync barrier every K ops) runs its entire
// workload through flaky connections while the server is killed and
// restarted from a crash-safe checkpoint mid-run. The claims under
// test, in order of importance:
//
//  1. Zero false alarms: connection resets, truncated frames, retries
//     and the restart itself never produce a deviation report. The
//     exactly-once session table is what makes retries safe; the
//     checkpoint's consistent cut (db + last-user + session cache,
//     captured under one freeze) is what makes the restart safe.
//  2. Exactly-once effects: the server's final operation counter
//     equals the number of operations the clients performed — no
//     retry was double-applied, none was lost.
//  3. Detection still works: the same faulty network with a tampering
//     server yields a DetectionError, not a hang and not a transport
//     error. Robustness must not have dulled the protocol's teeth.
//
// The report quantifies the cost: recovery latency after restart,
// reconnect counts, and the number of injected faults survived.

// E14Config parameterizes RunE14.
type E14Config struct {
	// DBSize is the number of preloaded keys.
	DBSize int
	// Users is the client population (each a full protocol user with
	// registers and sync duty).
	Users int
	// OpsPerUser is the workload each client performs.
	OpsPerUser int
	// K is the sync period: every K ops a client initiates a broadcast
	// barrier round.
	K uint64
	// Outage is how long the server stays down after the mid-run kill.
	Outage time.Duration
	// Seed derives every injector's seed; same seed, same fault
	// schedule.
	Seed int64
	// ResetProb and TruncateProb are the per-I/O fault rates on every
	// client's server and hub connections.
	ResetProb    float64
	TruncateProb float64
}

// DefaultE14Config is what E14() and cmd/tcvs-bench run.
func DefaultE14Config() E14Config {
	return E14Config{
		DBSize: 500, Users: 4, OpsPerUser: 120, K: 8,
		Outage: 150 * time.Millisecond, Seed: 42,
		ResetProb: 0.02, TruncateProb: 0.01,
	}
}

// E14Data is the full experiment result, serialized to BENCH_E14.json
// by cmd/tcvs-bench.
type E14Data struct {
	Users      int    `json:"users"`
	OpsPerUser int    `json:"ops_per_user"`
	TotalOps   uint64 `json:"total_ops"`
	K          uint64 `json:"k"`

	FaultsInjected      uint64  `json:"faults_injected"`
	TransportReconnects uint64  `json:"transport_reconnects"`
	HubReconnects       uint64  `json:"hub_reconnects"`
	OutageMillis        float64 `json:"outage_ms"`
	RecoveryMillis      float64 `json:"recovery_ms"`

	FalseAlarms    int    `json:"false_alarms"`
	FinalCtr       uint64 `json:"final_ctr"`
	CtrMatchesOps  bool   `json:"ctr_matches_ops"`
	RootContinuity bool   `json:"root_continuity"`

	AdversaryDetected bool   `json:"adversary_detected"`
	DetectionClass    string `json:"detection_class"`
	AdversaryFaults   uint64 `json:"adversary_phase_faults"`
}

// WriteJSON writes the result in the checked-in BENCH_E14.json format.
func (d *E14Data) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// e14Deployment is one live deployment: hub, server endpoint, and the
// per-client fault injectors.
type e14Deployment struct {
	cfg      E14Config
	hub      *broadcast.HubServer
	addr     string
	sessions *transport.SessionTable
	ts       *transport.Server
	handler  transport.Handler

	connInjs []*fault.Injector
	hubInjs  []*fault.Injector
	clients  []*driver.Client
	callers  []*transport.ResilientClient
	channels []broadcast.Channel
}

// e14Deploy stands up the hub and server, then connects cfg.Users full
// protocol clients through per-client faulty dialers.
func e14Deploy(cfg E14Config, srv server.Server, store *cvs.Store) (*e14Deployment, error) {
	hub, err := broadcast.ListenHub("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		hub.Close()
		return nil, err
	}
	d := &e14Deployment{
		cfg:      cfg,
		hub:      hub,
		addr:     lis.Addr().String(),
		sessions: transport.NewSessionTable(0),
		handler:  driver.NewHandler(srv, store),
	}
	d.ts = transport.ServeListener(lis, d.handler, transport.Options{Sessions: d.sessions})

	root := srv.DB().Root()
	pol := transport.RetryPolicy{CallTimeout: 5 * time.Second, MaxAttempts: 12}
	for i := 0; i < cfg.Users; i++ {
		cinj := fault.NewInjector(fault.Config{
			Seed: uint64(cfg.Seed) + uint64(i), After: 8,
			ResetProb: cfg.ResetProb, TruncateProb: cfg.TruncateProb,
		})
		hinj := fault.NewInjector(fault.Config{
			Seed: uint64(cfg.Seed) + 1000 + uint64(i), After: 8,
			ResetProb: cfg.ResetProb, TruncateProb: cfg.TruncateProb,
		})
		d.connInjs = append(d.connInjs, cinj)
		d.hubInjs = append(d.hubInjs, hinj)
		caller := transport.DialResilientFunc(fault.Dialer(d.addr, cinj), pol)
		ch := broadcast.DialHubResumeFunc(fault.Dialer(hub.Addr(), hinj))
		u := proto2.NewUser(sig.UserID(i), root, cfg.K)
		d.callers = append(d.callers, caller)
		d.channels = append(d.channels, ch)
		d.clients = append(d.clients, driver.NewP2(u, caller, ch, cfg.Users))
	}
	return d, nil
}

func (d *e14Deployment) close() {
	for _, c := range d.clients {
		c.Close()
	}
	if d.ts != nil {
		d.ts.Close()
	}
	d.hub.Close()
}

func (d *e14Deployment) faultsInjected() uint64 {
	var t uint64
	for _, inj := range d.connInjs {
		t += inj.Injected()
	}
	for _, inj := range d.hubInjs {
		t += inj.Injected()
	}
	return t
}

// RunE14 runs the full experiment.
func RunE14(cfg E14Config) (*E14Data, error) {
	d := &E14Data{
		Users: cfg.Users, OpsPerUser: cfg.OpsPerUser,
		TotalOps: uint64(cfg.Users) * uint64(cfg.OpsPerUser), K: cfg.K,
		OutageMillis: float64(cfg.Outage.Milliseconds()),
	}

	// ---- Phase 1: honest server, kill/restart mid-workload ----
	db := seedDB(cfg.DBSize)
	srv := server.NewP2(db)
	store := cvs.NewStore()
	dep, err := e14Deploy(cfg, srv, store)
	if err != nil {
		return nil, err
	}
	defer dep.close()

	var opsDone atomic.Uint64
	// restartNanos is 0 until the server is back; clients use it to
	// stamp their first post-restart completion for the recovery
	// latency measurement.
	var restartNanos atomic.Int64
	recoverAt := make([]atomic.Int64, cfg.Users)

	var wg sync.WaitGroup
	errs := make([]error, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := dep.clients[id]
			for j := 0; j < cfg.OpsPerUser; j++ {
				op := benchOp(id*100003+j, cfg.DBSize)
				if _, err := cl.Do(op); err != nil {
					errs[id] = fmt.Errorf("client %d op %d: %w", id, j, err)
					return
				}
				opsDone.Add(1)
				if t := restartNanos.Load(); t != 0 && recoverAt[id].Load() == 0 {
					recoverAt[id].Store(time.Now().UnixNano())
				}
			}
		}(i)
	}

	// Kill the server once the workload is half done: sever the
	// transport FIRST, then take the checkpoint cut. Close waits for
	// in-flight handlers to drain, so once it returns nothing can
	// execute or acknowledge another op — every acked op is inside the
	// cut, and an ack that died with its connection is retried and
	// replayed from the restored session table. (Severing inside the
	// freeze deadlocks: Close waits on a handler that is itself
	// waiting on the frozen session table.) An acked-but-unpersisted
	// tail would (correctly) alarm on restart, and this experiment is
	// about proving the absence of false ones.
	half := uint64(cfg.Users) * uint64(cfg.OpsPerUser) / 2
	poll := backoff.Poll(time.Millisecond)
	for opsDone.Load() < half {
		poll.Sleep()
	}
	dep.ts.Close()
	var snap *server.P2Snapshot
	var cutRoot digest.Digest
	dep.sessions.Freeze(func(ss *transport.SessionsSnapshot) {
		snap, err = server.CheckpointP2(srv, store)
		if err == nil {
			snap.Sessions = ss
			cutRoot = srv.DB().Root()
		}
	})
	if err != nil {
		return nil, fmt.Errorf("E14 checkpoint: %w", err)
	}
	time.Sleep(cfg.Outage)

	// Restart: restore the snapshot into a fresh process-worth of state
	// and rebind the same address (clients are retrying against it).
	srv2, store2, err := server.RestoreP2(snap)
	if err != nil {
		return nil, fmt.Errorf("E14 restore: %w", err)
	}
	if snap.Sessions != nil {
		dep.sessions.RestoreSessions(snap.Sessions)
	}
	if srv2.DB().Root() != cutRoot {
		return nil, fmt.Errorf("E14: restored root %s != checkpoint root %s", srv2.DB().Root().Short(), cutRoot.Short())
	}
	d.RootContinuity = true
	lis2, err := net.Listen("tcp", dep.addr)
	if err != nil {
		return nil, fmt.Errorf("E14 rebind %s: %w", dep.addr, err)
	}
	dep.ts = transport.ServeListener(lis2, driver.NewHandler(srv2, store2), transport.Options{Sessions: dep.sessions})
	restartNanos.Store(time.Now().UnixNano())

	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			return nil, fmt.Errorf("E14 phase 1 must complete cleanly: %w", werr)
		}
		if err := dep.clients[i].WaitIdle(10 * time.Second); err != nil {
			d.FalseAlarms++
		}
	}
	for _, cl := range dep.clients {
		if cl.Err() != nil {
			d.FalseAlarms++
		}
	}

	var lastRecover int64
	for i := range recoverAt {
		if t := recoverAt[i].Load(); t > lastRecover {
			lastRecover = t
		}
	}
	if lastRecover > 0 {
		d.RecoveryMillis = float64(lastRecover-restartNanos.Load()) / 1e6
	}
	d.FinalCtr = srv2.DB().Ctr()
	d.CtrMatchesOps = d.FinalCtr == d.TotalOps
	d.FaultsInjected = dep.faultsInjected()
	for _, c := range dep.callers {
		d.TransportReconnects += c.Reconnects()
	}
	for _, ch := range dep.channels {
		if rc, ok := ch.(interface{ Reconnects() uint64 }); ok {
			d.HubReconnects += rc.Reconnects()
		}
	}

	// ---- Phase 2: tampering server behind the same faulty network ----
	detected, class, advFaults, err := runE14Adversary(cfg)
	if err != nil {
		return nil, err
	}
	d.AdversaryDetected = detected
	d.DetectionClass = class
	d.AdversaryFaults = advFaults
	return d, nil
}

// runE14Adversary reruns a shorter workload against a TamperAnswer
// server through equally faulty connections: the tampered response
// must surface as a DetectionError at the victim client, proving the
// retry/reconnect machinery doesn't mask real deviations.
func runE14Adversary(cfg E14Config) (bool, string, uint64, error) {
	db := seedDB(cfg.DBSize)
	honest := server.NewP2(db)
	trigger := uint64(cfg.Users)*uint64(cfg.OpsPerUser)/4 + 1
	srv := adversary.Wrap(honest, adversary.Config{Kind: adversary.TamperAnswer, TriggerOp: trigger})
	dep, err := e14Deploy(cfg, srv, cvs.NewStore())
	if err != nil {
		return false, "", 0, err
	}
	defer dep.close()

	var wg sync.WaitGroup
	detections := make([]*core.DetectionError, cfg.Users)
	errs := make([]error, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := dep.clients[id]
			for j := 0; j < cfg.OpsPerUser; j++ {
				op := benchOp(id*100003+j, cfg.DBSize)
				if _, err := cl.Do(op); err != nil {
					if de, ok := core.AsDetection(err); ok {
						detections[id] = de
					} else {
						errs[id] = err
					}
					return
				}
			}
		}(i)
	}
	wg.Wait()
	var de *core.DetectionError
	for _, got := range detections {
		if got != nil {
			de = got
		}
	}
	if de == nil {
		others := ""
		for _, e := range errs {
			if e != nil {
				others = e.Error()
			}
		}
		return false, "", dep.faultsInjected(), fmt.Errorf("E14: tampering server was not detected (non-detection errors: %s)", others)
	}
	return true, de.Class.String(), dep.faultsInjected(), nil
}

// E14 runs the experiment with the default configuration and renders
// it as a table.
func E14() *Table {
	d, err := RunE14(DefaultE14Config())
	if err != nil {
		panic(err)
	}
	return d.Table()
}

// Table renders the data as the E14 exhibit.
func (d *E14Data) Table() *Table {
	t := &Table{
		ID:       "E14",
		Title:    "Robustness: availability and recovery under fault injection, kill/restart mid-workload",
		PaperRef: "Section 3 fault model boundary: benign faults tolerated, deviations detected; DESIGN.md \"Fault model & recovery\"",
		Columns:  []string{"metric", "value"},
	}
	t.AddRow("users x ops/user", fmt.Sprintf("%d x %d (k=%d)", d.Users, d.OpsPerUser, d.K))
	t.AddRow("faults injected (phase 1)", d.FaultsInjected)
	t.AddRow("transport reconnects", d.TransportReconnects)
	t.AddRow("hub reconnects", d.HubReconnects)
	t.AddRow("server outage", fmt.Sprintf("%.0f ms", d.OutageMillis))
	t.AddRow("recovery latency after restart", fmt.Sprintf("%.1f ms", d.RecoveryMillis))
	t.AddRow("false deviation alarms", d.FalseAlarms)
	t.AddRow("final ctr == total ops", fmt.Sprintf("%v (%d)", d.CtrMatchesOps, d.FinalCtr))
	t.AddRow("root continuity across restart", d.RootContinuity)
	t.AddRow("tampering detected through faults", fmt.Sprintf("%v (%s, %d faults)", d.AdversaryDetected, d.DetectionClass, d.AdversaryFaults))
	t.Notes = append(t.Notes,
		"kill = transport severed and drained, then checkpoint under session freeze: no op can be acked after the cut, so restart can never lose an acknowledged effect",
		"clients retry through resets/truncations with exactly-once server-side application (session table); the broadcast hub replays its log to reconnecting members, preserving the sync barrier's FIFO total order",
		"phase 2 reruns the workload against a tamper-answer adversary over the same faulty links: detection must fire, proving retries mask benign faults only")
	return t
}
