// Package adversary implements malicious-server behaviors: wrappers
// around an honest protocol server that deviate from the trusted
// execution in the specific ways the paper analyzes. Every behavior
// records the global operation index at which it first deviated, so
// experiments can measure detection delay exactly.
//
// Behaviors:
//
//   - Fork (Figure 1): maintain two diverged copies of the repository
//     and serve each user group its own copy — the partition attack
//     behind Theorem 3.1.
//   - ReplayStale: freeze one user on a snapshot (single-user
//     availability violation: the user never sees others' updates).
//   - DropUpdate: acknowledge a user's update with a fully valid proof
//     but discard its effect for everyone else (served from a
//     throwaway fork).
//   - TamperAnswer: return a corrupted answer for one operation.
//   - TamperState: silently modify repository data without any user
//     operation (single-user integrity violation).
//   - CounterReplay: show the same counter value twice.
//   - StallEpochs / WithholdBackup: Protocol III-specific attacks on
//     the epoch machinery.
//   - TornCommit: prove a cross-shard transaction in full but commit
//     only its first leg (Merkle forest atomicity attack).
package adversary

import (
	"fmt"
	"sync"

	"trustedcvs/internal/core"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// Kind selects a malicious behavior.
type Kind int

const (
	// Honest performs no deviation (control group).
	Honest Kind = iota
	// Fork mounts the Figure 1 partition attack at TriggerOp.
	Fork
	// ReplayStale freezes Target on a snapshot taken at TriggerOp.
	ReplayStale
	// DropUpdate discards the effect of the TriggerOp-th operation
	// while proving it to its issuer.
	DropUpdate
	// TamperAnswer corrupts the answer of the TriggerOp-th operation.
	TamperAnswer
	// TamperState silently rewrites Key just before the TriggerOp-th
	// operation, without advancing any protocol state.
	TamperState
	// CounterReplay serves the TriggerOp-th operation from the
	// pre-state of the previous operation, repeating a counter.
	CounterReplay
	// StallEpochs suppresses all epoch advancement (Protocol III).
	StallEpochs
	// WithholdBackup removes Target's backups from every
	// GetBackups response (Protocol III).
	WithholdBackup
	// TornCommit answers the first cross-shard transaction at or after
	// TriggerOp with a fully valid multi-leg proof served from a
	// throwaway fork, but lands only the first leg on the real history
	// — the atomicity violation the forest's transaction digest and
	// pending-leg checks exist to catch (core.TornTransaction).
	TornCommit
)

func (k Kind) String() string {
	switch k {
	case Honest:
		return "honest"
	case Fork:
		return "fork"
	case ReplayStale:
		return "replay-stale"
	case DropUpdate:
		return "drop-update"
	case TamperAnswer:
		return "tamper-answer"
	case TamperState:
		return "tamper-state"
	case CounterReplay:
		return "counter-replay"
	case StallEpochs:
		return "stall-epochs"
	case WithholdBackup:
		return "withhold-backup"
	case TornCommit:
		return "torn-commit"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config parameterizes a behavior.
type Config struct {
	Kind Kind
	// TriggerOp is the 1-based global operation index at which the
	// behavior activates (0 = from the first operation). For Fork, the
	// forked snapshot captures the state just BEFORE this operation.
	TriggerOp uint64
	// GroupB (Fork) is the set of users served from the forked copy.
	GroupB map[sig.UserID]bool
	// Target (ReplayStale, WithholdBackup) names the victim.
	Target sig.UserID
	// Key/Value (TamperState) is the record the server rewrites.
	Key   string
	Value []byte
}

// Server wraps an honest protocol server with a malicious behavior.
// It implements server.Server.
//
// Unlike the honest servers it serializes operations completely: the
// behaviors hinge on exact global operation indices (TriggerOp,
// DeviatedAtOp), which only mean something under a total order. The
// adversary is a measurement harness, never a throughput path.
type Server struct {
	cfg  Config
	main server.Server

	mu   sync.Mutex
	fork server.Server // lazily created fork (Fork, ReplayStale, CounterReplay)

	ops        uint64 // operations seen (global, across both branches)
	deviatedAt uint64 // 0 = not yet
	dropped    bool   // DropUpdate has discarded its target op
	// Divergence tracking for fork-style behaviors: a run only
	// *deviates* (Definition 2.1) once operations have been served
	// from BOTH branches after the snapshot — until then the fork
	// branch is a plain extension of the shared history and every
	// response remains serializable.
	forkServed bool
	mainServed bool
}

// Wrap attaches a behavior to an honest server.
func Wrap(honest server.Server, cfg Config) *Server {
	return &Server{cfg: cfg, main: honest}
}

// DeviatedAtOp returns the 1-based global operation index at which the
// server first deviated from the trusted execution, or 0 if it has
// behaved so far. Experiments measure detection delay from this point.
func (s *Server) DeviatedAtOp() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deviatedAt
}

// Ops returns the number of operations the server has handled.
func (s *Server) Ops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

func (s *Server) markDeviation() {
	if s.deviatedAt == 0 {
		s.deviatedAt = s.ops
	}
}

// noteServe records which branch served the current operation and
// marks the deviation once both branches have served since the
// snapshot.
func (s *Server) noteServe(onFork bool) {
	if onFork {
		s.forkServed = true
	} else {
		s.mainServed = true
	}
	if s.forkServed && s.mainServed {
		s.markDeviation()
	}
}

// Protocol implements server.Server.
func (s *Server) Protocol() server.Protocol { return s.main.Protocol() }

// DB implements server.Server.
func (s *Server) DB() *vdb.DB { return s.main.DB() }

// Epoch implements server.Server.
func (s *Server) Epoch() uint64 { return s.main.Epoch() }

// AdvanceEpoch implements server.Server. StallEpochs swallows it.
func (s *Server) AdvanceEpoch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Kind == StallEpochs {
		if s.deviatedAt == 0 {
			s.deviatedAt = s.ops + 1 // deviation is visible from the next op
		}
		return
	}
	s.main.AdvanceEpoch()
	if s.fork != nil {
		s.fork.AdvanceEpoch()
	}
}

// Fork implements server.Server (forking a malicious server is not
// meaningful; it forks the honest core).
func (s *Server) Fork() server.Server { return s.main.Fork() }

// triggered reports whether the behavior is active for the operation
// with 1-based index op.
func (s *Server) triggered(op uint64) bool {
	return op >= s.cfg.TriggerOp
}

// HandleOp implements server.Server with the configured deviation.
func (s *Server) HandleOp(req *core.OpRequest) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	switch s.cfg.Kind {
	case Fork:
		// The snapshot is taken immediately BEFORE the TriggerOp-th
		// operation is applied, so in the Figure 1 scenario the forked
		// copy excludes t1: group B never learns of it.
		if s.triggered(s.ops) && s.fork == nil {
			s.fork = s.main.Fork()
		}
		if s.fork != nil && s.cfg.GroupB[req.User] {
			s.noteServe(true)
			return s.fork.HandleOp(req)
		}
		if s.fork != nil {
			s.noteServe(false)
		}
		return s.main.HandleOp(req)

	case ReplayStale:
		if s.triggered(s.ops) && req.User == s.cfg.Target {
			if s.fork == nil {
				s.fork = s.main.Fork()
			}
			s.noteServe(true)
			return s.fork.HandleOp(req)
		}
		if s.fork != nil {
			s.noteServe(false)
		}
		return s.main.HandleOp(req)

	case DropUpdate:
		if s.ops == s.cfg.TriggerOp {
			// Prove the op on a throwaway fork; the real state never
			// changes. (Kept in s.fork so a Protocol I ack can land.)
			// This response alone is still consistent with a trusted
			// serialization in which the op simply happened — the run
			// first *deviates* (Definition 2.1) at the next response
			// served from the state that excludes it.
			s.fork = s.main.Fork()
			s.dropped = true
			return s.fork.HandleOp(req)
		}
		if s.dropped {
			s.markDeviation()
		}
		return s.main.HandleOp(req)

	case TamperAnswer:
		resp, err := s.main.HandleOp(req)
		if err != nil {
			return nil, err
		}
		if s.ops == s.cfg.TriggerOp {
			s.markDeviation()
			corruptAnswer(resp)
		}
		return resp, nil

	case TamperState:
		if s.ops == s.cfg.TriggerOp {
			// Rewrite a record with no protocol bookkeeping at all.
			s.markDeviation()
			if _, err := s.main.DB().ApplyPlain(&vdb.WriteOp{Puts: []vdb.KV{{Key: s.cfg.Key, Val: s.cfg.Value}}}); err != nil {
				return nil, err
			}
		}
		return s.main.HandleOp(req)

	case CounterReplay:
		if s.ops == s.cfg.TriggerOp && s.fork != nil {
			s.markDeviation()
			return s.fork.HandleOp(req)
		}
		// Keep a one-op-old snapshot around for the trigger.
		s.fork = s.main.Fork()
		return s.main.HandleOp(req)

	case TornCommit:
		cross, isCross := req.Op.(*vdb.CrossOp)
		if !s.dropped && s.triggered(s.ops) && isCross && len(cross.Legs) >= 2 {
			// Prove the whole transaction on a throwaway fork; commit
			// only the first leg for real. Like DropUpdate, this response
			// alone is still serializable — the run deviates at the next
			// response served from the history missing the other legs.
			s.fork = s.main.Fork()
			resp, err := s.fork.HandleOp(req)
			if err != nil {
				return nil, err
			}
			if _, err := s.main.HandleOp(&core.OpRequest{User: req.User, Op: cross.Legs[0]}); err != nil {
				return nil, err
			}
			s.dropped = true
			return resp, nil
		}
		if s.dropped {
			s.markDeviation()
		}
		return s.main.HandleOp(req)

	default:
		return s.main.HandleOp(req)
	}
}

// HandleAck implements server.Server.
func (s *Server) HandleAck(ack *core.AckRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Route the ack to whichever branch is mid-operation; for the
	// honest and most adversarial cases that is main. Fork-style
	// behaviors must ack on the branch that produced the response: we
	// try main first and fall back to the fork.
	if err := s.main.HandleAck(ack); err == nil {
		return nil
	} else if s.fork == nil {
		return err
	}
	return s.fork.HandleAck(ack)
}

// HandleGetBackups implements server.Server.
func (s *Server) HandleGetBackups(req *core.GetBackupsRequest) (*core.BackupsResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.main
	// Under a fork, each user sees its own branch's stored backups.
	if s.fork != nil && (s.cfg.Kind == Fork && s.cfg.GroupB[req.User] ||
		s.cfg.Kind == ReplayStale && req.User == s.cfg.Target) {
		src = s.fork
	}
	resp, err := src.HandleGetBackups(req)
	if err != nil {
		return nil, err
	}
	if s.cfg.Kind == WithholdBackup {
		kept := resp.Backups[:0:0]
		for _, b := range resp.Backups {
			if b.User != s.cfg.Target {
				kept = append(kept, b)
			}
		}
		if len(kept) != len(resp.Backups) {
			s.markDeviation()
		}
		resp.Backups = kept
	}
	return resp, nil
}

// corruptAnswer substitutes a semantically different (but perfectly
// well-formed) answer — the server lying about data. Corrupting raw
// bytes would be weaker: gob tolerates flips in parts of the stream,
// and an answer that decodes identically is not a lie at all.
func corruptAnswer(resp any) {
	forged, err := vdb.EncodeAnswer(vdb.ReadAnswer{
		Results: []vdb.ReadResult{{Key: "forged-by-server", Found: true, Val: []byte("evil")}},
	})
	if err != nil {
		panic("adversary: encode forged answer: " + err.Error())
	}
	switch r := resp.(type) {
	case *core.OpResponseI:
		r.Answer = forged
	case *core.OpResponseII:
		r.Answer = forged
	}
}
