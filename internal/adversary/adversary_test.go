package adversary

import (
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

func honestP2(t *testing.T) server.Server {
	t.Helper()
	return server.NewP2(vdb.New(0))
}

func req(u sig.UserID, k, v string) *core.OpRequest {
	return &core.OpRequest{User: u, Op: &vdb.WriteOp{Puts: []vdb.KV{{Key: k, Val: []byte(v)}}}}
}

func TestHonestWrapperIsTransparent(t *testing.T) {
	s := Wrap(honestP2(t), Config{Kind: Honest})
	for i := 0; i < 5; i++ {
		if _, err := s.HandleOp(req(0, "k", "v")); err != nil {
			t.Fatal(err)
		}
	}
	if s.DeviatedAtOp() != 0 {
		t.Fatal("honest wrapper must never deviate")
	}
	if s.Ops() != 5 {
		t.Fatalf("ops: %d", s.Ops())
	}
}

func TestForkDeviationPoint(t *testing.T) {
	s := Wrap(honestP2(t), Config{Kind: Fork, TriggerOp: 3, GroupB: map[sig.UserID]bool{1: true}})
	// Ops 1-2: shared prefix.
	mustOp(t, s, req(0, "a", "1"))
	mustOp(t, s, req(1, "b", "2"))
	// Op 3: group-B op served from the fresh snapshot. The fork is a
	// plain extension of the shared history until main also serves, so
	// the run has not formally deviated yet (Definition 2.1).
	mustOp(t, s, req(1, "c", "3"))
	if s.DeviatedAtOp() != 0 {
		t.Fatalf("deviated at %d, want 0 (fork not yet divergent)", s.DeviatedAtOp())
	}
	// Op 4: group A continues on main, unaware of c — NOW the two
	// histories are mutually unserializable.
	resp := mustOp(t, s, &core.OpRequest{User: 0, Op: &vdb.ReadOp{Keys: []string{"c"}}})
	if s.DeviatedAtOp() != 4 {
		t.Fatalf("deviated at %d, want 4", s.DeviatedAtOp())
	}
	r2 := resp.(*core.OpResponseII)
	ans, err := vdb.DecodeAnswer(r2.Answer)
	if err != nil {
		t.Fatal(err)
	}
	if ans.(vdb.ReadAnswer).Results[0].Found {
		t.Fatal("main branch should not contain the forked write")
	}
}

func TestForkSnapshotExcludesTriggerOp(t *testing.T) {
	// The op at TriggerOp itself (t1) must NOT be visible on the fork.
	s := Wrap(honestP2(t), Config{Kind: Fork, TriggerOp: 2, GroupB: map[sig.UserID]bool{1: true}})
	mustOp(t, s, req(0, "pre", "x"))
	mustOp(t, s, req(0, "t1", "secret")) // op 2 = t1, group A
	resp := mustOp(t, s, &core.OpRequest{User: 1, Op: &vdb.ReadOp{Keys: []string{"t1", "pre"}}})
	ans, _ := vdb.DecodeAnswer(resp.(*core.OpResponseII).Answer)
	results := ans.(vdb.ReadAnswer).Results
	if results[0].Found {
		t.Fatal("fork must not contain t1")
	}
	if !results[1].Found {
		t.Fatal("fork must contain the pre-trigger prefix")
	}
}

func TestTamperAnswerOnlyAtTrigger(t *testing.T) {
	s := Wrap(honestP2(t), Config{Kind: TamperAnswer, TriggerOp: 2})
	r1 := mustOp(t, s, req(0, "a", "1")).(*core.OpResponseII)
	if _, err := vdb.DecodeAnswer(r1.Answer); err != nil {
		t.Fatalf("op 1 should be clean: %v", err)
	}
	if s.DeviatedAtOp() != 0 {
		t.Fatal("no deviation before trigger")
	}
	mustOp(t, s, req(0, "a", "2"))
	if s.DeviatedAtOp() != 2 {
		t.Fatalf("deviated at %d, want 2", s.DeviatedAtOp())
	}
}

func TestKindStrings(t *testing.T) {
	for k := Honest; k <= WithholdBackup; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind string")
	}
}

func mustOp(t *testing.T, s *Server, r *core.OpRequest) any {
	t.Helper()
	resp, err := s.HandleOp(r)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
