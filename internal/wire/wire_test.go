package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/merkle"
	"trustedcvs/internal/vdb"
)

func TestRoundTripProtocolMessages(t *testing.T) {
	// Build a real response with a real VO to prove the whole message
	// set survives the codec.
	db := vdb.New(0)
	op := &vdb.WriteOp{Puts: []vdb.KV{{Key: "a", Val: []byte("1")}}}
	ans, vo, err := db.Apply(op)
	if err != nil {
		t.Fatal(err)
	}
	msgs := []any{
		&core.OpRequest{User: 3, Op: op},
		&core.OpResponseII{Answer: ans, VO: vo, Ctr: 0, Last: 7},
		&core.SyncRequest{From: 1, Round: 2},
		core.SyncReportI{User: 1, LCtr: 5, GCtr: 9},
		&core.PushContentRequest{Path: "f", Rev: 1, Content: []byte("data")},
		&core.OKResponse{},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write(%T): %v", m, err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read for %T: %v", want, err)
		}
		if _, ok := got.(*core.OpResponseII); ok {
			resp := got.(*core.OpResponseII)
			// Replay the VO to prove it survived intact.
			if _, err := vdb.Verify(op, resp.Answer, resp.VO, merkle.New(0).RootDigest()); err != nil {
				t.Fatalf("VO did not survive the wire: %v", err)
			}
		}
	}
	if buf.Len() != 0 {
		t.Fatal("trailing bytes after reads")
	}
}

func TestReadEOF(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestSizeLimit(t *testing.T) {
	big := &core.PushContentRequest{Content: make([]byte, MaxMessage+1)}
	if err := Write(io.Discard, big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	// A hostile header claiming a giant body must be rejected before
	// allocation.
	r := bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Read(r); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge for hostile header, got %v", err)
	}
}

func TestTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &core.OKResponse{}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated body must error")
	}
}

func TestSize(t *testing.T) {
	small, err := Size(&core.OKResponse{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Size(&core.PushContentRequest{Content: make([]byte, 10000)})
	if err != nil {
		t.Fatal(err)
	}
	if small <= 4 || large < small+10000 {
		t.Fatalf("sizes: small %d large %d", small, large)
	}
}

func TestConnServeOverPipe(t *testing.T) {
	cli, srv := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- Serve(srv, func(req any) (any, error) {
			if r, ok := req.(*core.SyncRequest); ok {
				return &core.SyncRequest{From: r.From, Round: r.Round + 1}, nil
			}
			return nil, errors.New("boom")
		})
	}()
	conn := NewConn(cli)
	resp, err := conn.Call(&core.SyncRequest{From: 2, Round: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r := resp.(*core.SyncRequest); r.Round != 11 {
		t.Fatalf("resp: %+v", r)
	}
	// Server-side errors come back as errors.
	if _, err := conn.Call(&core.OKResponse{}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want boom error, got %v", err)
	}
	conn.Close()
	if err := <-done; err != nil && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("serve exit: %v", err)
	}
}

func TestLegacyConnServeOverPipe(t *testing.T) {
	cli, srv := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- ServeLegacy(srv, func(req any) (any, error) {
			return req, nil
		})
	}()
	conn := NewLegacyConn(cli)
	for i := uint64(0); i < 3; i++ {
		resp, err := conn.Call(&core.SyncRequest{From: 1, Round: i})
		if err != nil {
			t.Fatal(err)
		}
		if r := resp.(*core.SyncRequest); r.Round != i {
			t.Fatalf("resp: %+v", r)
		}
	}
	conn.Close()
	if err := <-done; err != nil && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("serve exit: %v", err)
	}
}

// TestStreamingDescriptorsAmortized pins the codec win the pipeline is
// built on: after the first message of a type, later frames omit the
// gob type descriptors, so a streaming frame is strictly smaller than
// the self-contained frame of the same message.
func TestStreamingDescriptorsAmortized(t *testing.T) {
	msg := &core.SyncRequest{From: 1, Round: 2}
	var sizes []int
	rec := writerFunc(func(p []byte) (int, error) {
		sizes = append(sizes, len(p))
		return len(p), nil
	})
	enc := NewEncoder(rec)
	for i := 0; i < 3; i++ {
		if err := enc.Encode(msg); err != nil {
			t.Fatal(err)
		}
	}
	selfContained, err := Size(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 {
		t.Fatalf("each Encode must issue exactly one Write, got %d writes", len(sizes))
	}
	if sizes[1] >= sizes[0] {
		t.Fatalf("descriptors not amortized: frame sizes %v", sizes)
	}
	if sizes[1] != sizes[2] {
		t.Fatalf("steady-state frames differ: %v", sizes)
	}
	if sizes[1] >= selfContained {
		t.Fatalf("steady-state streaming frame (%d) not smaller than self-contained (%d)", sizes[1], selfContained)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestStreamingRoundTrip(t *testing.T) {
	db := vdb.New(0)
	op := &vdb.WriteOp{Puts: []vdb.KV{{Key: "a", Val: []byte("1")}}}
	ans, vo, err := db.Apply(op)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	msgs := []any{
		&core.OpRequest{User: 3, Op: op},
		&core.OpResponseII{Answer: ans, VO: vo, Ctr: 0, Last: 7},
		&core.OpResponseII{Answer: ans, VO: vo, Ctr: 1, Last: 8},
		&core.OKResponse{},
	}
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatalf("Encode(%T): %v", m, err)
		}
	}
	dec := NewDecoder(&buf)
	for _, want := range msgs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("Decode for %T: %v", want, err)
		}
		if resp, ok := got.(*core.OpResponseII); ok {
			if _, err := vdb.Verify(op, resp.Answer, resp.VO, merkle.New(0).RootDigest()); err != nil {
				t.Fatalf("VO did not survive the stream: %v", err)
			}
		}
	}
	if _, err := dec.Decode(); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

// TestStreamingBudget: a hostile peer may not smuggle an over-limit
// gob message by splitting it across many small frames — the decoder
// enforces MaxMessage per decoded message, not just per frame.
func TestStreamingBudget(t *testing.T) {
	var raw bytes.Buffer
	big := &core.PushContentRequest{Content: make([]byte, MaxMessage+100)}
	if err := gob.NewEncoder(&raw).Encode(&envelope{Payload: big}); err != nil {
		t.Fatal(err)
	}
	var framed bytes.Buffer
	const chunk = 1 << 20
	for b := raw.Bytes(); len(b) > 0; {
		n := chunk
		if n > len(b) {
			n = len(b)
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(n))
		framed.Write(hdr[:])
		framed.Write(b[:n])
		b = b[n:]
	}
	if _, err := NewDecoder(&framed).Decode(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

// TestEncoderPoisonedAfterError: a failed Encode must not leave a
// half-written gob stream that silently corrupts later messages.
func TestEncoderPoisonedAfterError(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(unregistered{X: 1}); err == nil {
		t.Fatal("want encode error for unregistered type")
	}
	if err := enc.Encode(&core.OKResponse{}); err == nil {
		t.Fatal("encoder must stay poisoned after an encode error")
	}
}

type unregistered struct{ X int }

func TestWriteUnregisteredType(t *testing.T) {
	// Not gob-registered: Write must fail cleanly, not panic.
	if err := Write(io.Discard, unregistered{X: 1}); err == nil {
		t.Fatal("want encode error for unregistered type")
	}
	_ = gob.Encoder{}
}
