package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"trustedcvs/internal/core"
	"trustedcvs/internal/vdb"
)

// TestQuickReadNeverPanicsOnGarbage: the server is untrusted and owns
// the wire — arbitrary bytes must produce errors, never panics or
// giant allocations.
func TestQuickReadNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, rng.Intn(512))
		rng.Read(b)
		_, _ = Read(bytes.NewReader(b))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStreamingDecodeNeverPanicsOnGarbage: the streaming decoder
// faces the same untrusted wire as the legacy one.
func TestQuickStreamingDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, rng.Intn(512))
		rng.Read(b)
		d := NewDecoder(bytes.NewReader(b))
		for i := 0; i < 4; i++ {
			if _, err := d.Decode(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBitflippedFramesNeverPanic: take real protocol frames, flip
// random bits, and confirm Read either errors or returns a decodable
// value — never panics.
func TestQuickBitflippedFramesNeverPanic(t *testing.T) {
	db := vdb.New(0)
	ans, vo, err := db.Apply(&vdb.WriteOp{Puts: []vdb.KV{{Key: "k", Val: []byte("v")}}})
	if err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if err := Write(&frame, &core.OpResponseII{Answer: ans, VO: vo, Ctr: 0, Last: 7}); err != nil {
		t.Fatal(err)
	}
	orig := frame.Bytes()

	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		b := append([]byte(nil), orig...)
		for i := 0; i < 1+rng.Intn(4); i++ {
			b[rng.Intn(len(b))] ^= 1 << rng.Intn(8)
		}
		msg, err := Read(bytes.NewReader(b))
		if err != nil {
			return true
		}
		// If it decoded, downstream handling must also be total: a
		// response with a hostile VO goes through VO materialization.
		if resp, isResp := msg.(*core.OpResponseII); isResp && resp.VO != nil {
			_, _ = resp.VO.Tree()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHostileVOReplayNeverPanics: random structural mutations of
// a real VO must be rejected by Tree()/Replay with errors, not panics,
// and must never verify against the honest root unless unchanged.
func TestQuickHostileVOReplayNeverPanics(t *testing.T) {
	db := vdb.New(0)
	for i := 0; i < 200; i++ {
		if err := db.Preload(&vdb.WriteOp{Puts: []vdb.KV{{Key: key(i), Val: []byte("v")}}}); err != nil {
			t.Fatal(err)
		}
	}
	trusted := db.Root()
	op := &vdb.ReadOp{Keys: []string{key(50)}}
	ans, vo, err := db.Apply(op)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize once; mutations happen on fresh decodes.
	var frame bytes.Buffer
	if err := Write(&frame, &core.OpResponseII{Answer: ans, VO: vo}); err != nil {
		t.Fatal(err)
	}
	orig := frame.Bytes()

	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		b := append([]byte(nil), orig...)
		mutated := rng.Intn(4) > 0
		if mutated {
			for i := 0; i < 1+rng.Intn(6); i++ {
				b[4+rng.Intn(len(b)-4)] ^= byte(1 + rng.Intn(255))
			}
		}
		msg, err := Read(bytes.NewReader(b))
		if err != nil {
			return true
		}
		resp, isResp := msg.(*core.OpResponseII)
		if !isResp || resp.VO == nil {
			return true
		}
		_, verr := vdb.Verify(op, resp.Answer, resp.VO, trusted)
		if !mutated && verr != nil {
			t.Logf("unmutated frame failed verification: %v", verr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func key(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i%10)) + "-key"
}
