package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/vdb"
)

// FuzzFrameDecode drives both wire decoders (legacy self-contained
// Read and the streaming Decoder) with arbitrary bytes. Properties:
// no panic on any input, and a frame header promising more than
// MaxMessage must be rejected with ErrTooLarge before any allocation —
// the decode budget is the server-side DoS defense.
func FuzzFrameDecode(f *testing.F) {
	db := vdb.New(0)
	ans, vo, err := db.Apply(&vdb.WriteOp{Puts: []vdb.KV{{Key: "k", Val: []byte("v")}}})
	if err != nil {
		f.Fatal(err)
	}
	var frame bytes.Buffer
	if err := Write(&frame, &core.OpResponseII{Answer: ans, VO: vo, Ctr: 0, Last: 7}); err != nil {
		f.Fatal(err)
	}
	honest := frame.Bytes()
	f.Add(append([]byte(nil), honest...))
	f.Add(append([]byte(nil), honest[:len(honest)/2]...))
	var over [8]byte
	binary.BigEndian.PutUint32(over[:4], MaxMessage+1)
	f.Add(over[:])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		msg, err := Read(bytes.NewReader(b))
		if len(b) >= 4 {
			if n := binary.BigEndian.Uint32(b[:4]); n > MaxMessage && !errors.Is(err, ErrTooLarge) {
				t.Fatalf("header promises %d bytes (over MaxMessage) but Read returned %v", n, err)
			}
		}
		if err == nil {
			// A decoded hostile response flows into VO materialization
			// downstream; that path must be total as well.
			if resp, ok := msg.(*core.OpResponseII); ok && resp.VO != nil {
				_, _ = resp.VO.Tree()
			}
		}
		d := NewDecoder(bytes.NewReader(b))
		for i := 0; i < 4; i++ {
			if _, err := d.Decode(); err != nil {
				break
			}
		}
	})
}
