// Package wire implements the framing and codec used on every network
// connection: length-prefixed, gob-encoded envelopes with a hard size
// limit protecting against hostile peers (the server is untrusted,
// after all).
//
// Two codec modes share the same [4-byte big-endian length][gob bytes]
// frame format:
//
//   - Streaming (Encoder/Decoder, the default for Conn, Serve and the
//     broadcast hub): one persistent gob stream per connection
//     direction, so type descriptors cross the wire once per
//     connection instead of once per message — and, just as
//     important, decoder engines are compiled once per connection
//     instead of once per message. Each frame is assembled into a
//     reused per-connection buffer and written header+body in a
//     single syscall.
//   - Self-contained (Write/Read, the seed codec): every frame is an
//     independent gob stream. Readers never depend on connection
//     history — what E13's seed-compat baseline measures.
//
// The two modes do not interoperate on one connection: a persistent
// decoder rejects the duplicate type descriptors that self-contained
// frames resend. Both ends of a connection must agree (see
// transport.Options).
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxMessage is the largest accepted frame (16 MiB) — far above any
// legitimate VO or content blob in this system, far below a memory
// exhaustion attack. The streaming decoder additionally enforces it
// per decoded message, so a hostile peer cannot smuggle an unbounded
// gob value across many small frames.
const MaxMessage = 16 << 20

// ErrTooLarge is returned for frames exceeding MaxMessage.
var ErrTooLarge = errors.New("wire: message exceeds size limit")

// envelope wraps the payload so gob can transport interface values.
type envelope struct {
	Payload any
}

// ErrorReply carries a server-side error back to the caller.
type ErrorReply struct {
	Msg string
}

// ErrRemote marks an error that was *delivered by the server* as an
// ErrorReply — the request reached the handler and was answered.
// Resilient clients must not retry these: the failure is the
// application's verdict, not the network's. Transport-level failures
// (reset, timeout, truncation) never carry this mark.
var ErrRemote = errors.New("wire: remote error")

// remoteError converts a received ErrorReply into an error wrapping
// ErrRemote while preserving the server's message text (callers match
// on substrings of it).
func remoteError(e *ErrorReply) error {
	return fmt.Errorf("wire: server: %s%w", e.Msg, errMarker{})
}

// errMarker splices ErrRemote into a formatted error without altering
// its message text.
type errMarker struct{}

func (errMarker) Error() string { return "" }
func (errMarker) Is(target error) bool {
	return target == ErrRemote
}

// SessionRequest is the at-most-once envelope a resilient client wraps
// around every request. SID identifies the client session (a random
// nonzero 64-bit nonce), Seq increments per logical call. A
// session-aware server deduplicates on (SID, Seq): a retried request
// whose original reached the handler gets the cached response instead
// of a second application — the property that makes retry safe for
// non-idempotent protocol operations.
type SessionRequest struct {
	SID uint64
	Seq uint64
	Req any
}

func init() {
	gob.Register(&ErrorReply{})
	gob.Register(&SessionRequest{})
}

// bufPool recycles frame-assembly buffers for the self-contained path
// (Write, Size), which has no connection to hang state off.
var bufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// maxPooledBuf caps the capacity of buffers returned to the pool so a
// single giant content blob does not pin memory forever.
const maxPooledBuf = 1 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		b.Reset()
		bufPool.Put(b)
	}
}

// frame prefixes buf's content (assembled after a 4-byte placeholder)
// with its length and writes the whole thing with one Write call.
func frame(w io.Writer, buf *bytes.Buffer) error {
	body := buf.Len() - 4
	if body > MaxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, body)
	}
	binary.BigEndian.PutUint32(buf.Bytes()[:4], uint32(body))
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

var hdrPlaceholder [4]byte

// Write frames and writes one self-contained message: the frame is a
// complete gob stream carrying its own type descriptors.
func Write(w io.Writer, msg any) error {
	buf := getBuf()
	defer putBuf(buf)
	buf.Reset()
	buf.Write(hdrPlaceholder[:])
	if err := gob.NewEncoder(buf).Encode(&envelope{Payload: msg}); err != nil {
		return fmt.Errorf("wire: encode %T: %w", msg, err)
	}
	return frame(w, buf)
}

// writeSeed reproduces the seed codec's write path exactly — fresh
// buffer, fresh gob stream, header and body written separately (two
// syscalls) — so E13's baseline measures the seed, not a partially
// optimized hybrid. Production self-contained writes use Write.
func writeSeed(w io.Writer, msg any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&envelope{Payload: msg}); err != nil {
		return fmt.Errorf("wire: encode %T: %w", msg, err)
	}
	if buf.Len() > MaxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// Read reads one self-contained framed message.
func Read(r io.Reader) (any, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessage {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return env.Payload, nil
}

// Size returns the self-contained encoded frame size of msg — used by
// experiments that report wire bytes (VO sizes, sync traffic). It
// deliberately measures the seed codec: a per-message figure that does
// not depend on what else a connection has carried.
func Size(msg any) (int, error) {
	buf := getBuf()
	defer putBuf(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(&envelope{Payload: msg}); err != nil {
		return 0, err
	}
	return buf.Len() + 4, nil
}

// Encoder writes framed messages into one persistent gob stream. Not
// safe for concurrent use; callers serialize (Conn does, Serve is a
// single loop).
type Encoder struct {
	w      io.Writer
	buf    bytes.Buffer // reused frame-assembly buffer
	enc    *gob.Encoder
	broken error
}

// NewEncoder returns a streaming encoder over w.
func NewEncoder(w io.Writer) *Encoder {
	e := &Encoder{w: w}
	e.enc = gob.NewEncoder(&e.buf)
	return e
}

// Encode frames and writes one message, header and body in a single
// Write call. An encode error poisons the stream (the gob encoder's
// descriptor bookkeeping may no longer match what reached the peer),
// so every subsequent Encode fails until the connection is replaced.
func (e *Encoder) Encode(msg any) error {
	if e.broken != nil {
		return e.broken
	}
	e.buf.Reset()
	e.buf.Write(hdrPlaceholder[:])
	if err := e.enc.Encode(&envelope{Payload: msg}); err != nil {
		e.broken = fmt.Errorf("wire: stream poisoned by encode of %T: %w", msg, err)
		return fmt.Errorf("wire: encode %T: %w", msg, err)
	}
	if err := frame(e.w, &e.buf); err != nil {
		e.broken = err
		return err
	}
	if e.buf.Cap() > maxPooledBuf {
		e.buf = bytes.Buffer{} // drop oversized scratch, keep the stream
	}
	return nil
}

// frameReader feeds a gob.Decoder the concatenated bodies of incoming
// frames, enforcing MaxMessage per frame (header check) and per decoded
// message (budget, reset by Decoder.Decode).
type frameReader struct {
	r      io.Reader
	remain int // unread bytes of the current frame
	budget int // bytes the current Decode may still consume
}

func (fr *frameReader) Read(p []byte) (int, error) {
	if fr.remain == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
			return 0, err // io.EOF at a frame boundary = clean shutdown
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > MaxMessage {
			return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
		}
		fr.remain = int(n)
	}
	if fr.budget <= 0 {
		return 0, fmt.Errorf("%w: message spans frames past limit", ErrTooLarge)
	}
	if len(p) > fr.remain {
		p = p[:fr.remain]
	}
	if len(p) > fr.budget {
		p = p[:fr.budget]
	}
	n, err := fr.r.Read(p)
	fr.remain -= n
	fr.budget -= n
	if err == io.EOF && fr.remain > 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// Decoder reads framed messages from one persistent gob stream. Not
// safe for concurrent use.
type Decoder struct {
	fr  *frameReader
	dec *gob.Decoder
}

// NewDecoder returns a streaming decoder over r. The decoder owns the
// read half of the stream: it buffers beneath the frame layer so a
// header and its body usually cost one syscall, not two.
func NewDecoder(r io.Reader) *Decoder {
	if _, ok := r.(*bufio.Reader); !ok {
		r = bufio.NewReader(r)
	}
	fr := &frameReader{r: r}
	return &Decoder{fr: fr, dec: gob.NewDecoder(fr)}
}

// Decode reads the next message. It returns io.EOF when the stream
// ends cleanly at a frame boundary.
func (d *Decoder) Decode() (any, error) {
	d.fr.budget = MaxMessage
	var env envelope
	if err := d.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return env.Payload, nil
}

// Conn is a synchronous request/response client over any stream,
// using the streaming codec. It serializes concurrent callers.
type Conn struct {
	mu  sync.Mutex
	enc *Encoder
	dec *Decoder
	c   io.Closer // optional
}

// NewConn wraps a stream with the streaming codec. If rw also
// implements io.Closer, Close closes it. The peer must serve the same
// codec (wire.Serve / transport default).
func NewConn(rw io.ReadWriter) *Conn {
	c, _ := rw.(io.Closer)
	return &Conn{enc: NewEncoder(rw), dec: NewDecoder(rw), c: c}
}

// Call sends req and waits for the reply. A server-side ErrorReply is
// converted into an error.
func (c *Conn) Call(req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	resp, err := c.dec.Decode()
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*ErrorReply); ok {
		return nil, remoteError(e)
	}
	return resp, nil
}

// Close closes the underlying stream when possible.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// LegacyConn is Conn over the seed's self-contained per-message codec.
// It exists for the E13 baseline and for peers that must remain
// stateless per message.
type LegacyConn struct {
	mu sync.Mutex
	rw io.ReadWriter
	c  io.Closer
}

// NewLegacyConn wraps a stream with the self-contained codec. The peer
// must serve the same codec (wire.ServeLegacy / transport compat mode).
func NewLegacyConn(rw io.ReadWriter) *LegacyConn {
	c, _ := rw.(io.Closer)
	return &LegacyConn{rw: rw, c: c}
}

// Call sends req and waits for the reply, one self-contained gob
// stream per frame, using the seed's exact write path.
func (c *LegacyConn) Call(req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeSeed(c.rw, req); err != nil {
		return nil, err
	}
	resp, err := Read(c.rw)
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*ErrorReply); ok {
		return nil, remoteError(e)
	}
	return resp, nil
}

// Close closes the underlying stream when possible.
func (c *LegacyConn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// Serve answers requests on a stream until it closes, using the
// streaming codec: each incoming message is passed to handler and the
// result (or an ErrorReply) written back. Returns nil on clean EOF.
func Serve(rw io.ReadWriter, handler func(any) (any, error)) error {
	enc, dec := NewEncoder(rw), NewDecoder(rw)
	for {
		req, err := dec.Decode()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp, err := handler(req)
		if err != nil {
			resp = &ErrorReply{Msg: err.Error()}
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
	}
}

// ServeLegacy is Serve over the seed's self-contained codec, for peers
// using NewLegacyConn (E13 baseline, compat tests).
func ServeLegacy(rw io.ReadWriter, handler func(any) (any, error)) error {
	for {
		req, err := Read(rw)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp, err := handler(req)
		if err != nil {
			resp = &ErrorReply{Msg: err.Error()}
		}
		if err := writeSeed(rw, resp); err != nil {
			return err
		}
	}
}
