// Package wire implements the framing and codec used on every network
// connection: length-prefixed, gob-encoded envelopes with a hard size
// limit protecting against hostile peers (the server is untrusted,
// after all).
//
// Two codec modes share the same [4-byte big-endian length][gob bytes]
// frame format:
//
//   - Streaming (Encoder/Decoder, the default for Conn, Serve and the
//     broadcast hub): one persistent gob stream per connection
//     direction, so type descriptors cross the wire once per
//     connection instead of once per message — and, just as
//     important, decoder engines are compiled once per connection
//     instead of once per message. Each frame is assembled into a
//     reused per-connection buffer and written header+body in a
//     single syscall.
//   - Self-contained (Write/Read, the seed codec): every frame is an
//     independent gob stream. Readers never depend on connection
//     history — what E13's seed-compat baseline measures.
//
// The two modes do not interoperate on one connection: a persistent
// decoder rejects the duplicate type descriptors that self-contained
// frames resend. Both ends of a connection must agree (see
// transport.Options).
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// MaxMessage is the largest accepted frame (16 MiB) — far above any
// legitimate VO or content blob in this system, far below a memory
// exhaustion attack. The streaming decoder additionally enforces it
// per decoded message, so a hostile peer cannot smuggle an unbounded
// gob value across many small frames.
const MaxMessage = 16 << 20

// budgetFlag marks a streaming frame header that carries a deadline
// budget. MaxMessage fits in 25 bits, so the top bits of the length
// word are guaranteed zero in every frame ever written before budgets
// existed — old streams parse identically, and a flagged frame sent to
// a pre-budget reader fails its length check loudly instead of
// misparsing. When the flag is set, a 4-byte big-endian budget in
// microseconds follows the length word (see Encoder.EncodeBudget).
// The self-contained seed codec (Write/Read/CompatCodec) never emits
// or accepts the flag: budgets are a streaming-mode extension.
const budgetFlag = 1 << 31

// maxBudgetUS caps an encoded budget at what fits in 32 bits of
// microseconds (~71 minutes) — far beyond any request deadline this
// system issues.
const maxBudgetUS = 1<<32 - 1

// ErrTooLarge is returned for frames exceeding MaxMessage.
var ErrTooLarge = errors.New("wire: message exceeds size limit")

// ErrDeadlineExceeded marks a request refused (by either end) because
// its propagated deadline budget had already expired. It is a
// *delivered* verdict when it comes back as an ErrorReply — it wraps
// ErrRemote in that case — and resilient clients must not retry it:
// the client's own caller has given up, so retrying only burns server
// capacity on work nobody will read.
var ErrDeadlineExceeded = errors.New("wire: deadline exceeded")

// ErrOverloaded marks a request shed by server admission control
// before any protocol state was touched: not applied, not cached, no
// audit obligation created. A resilient client may fail over to
// another endpoint (the refusal is atomic, so re-presenting the same
// session sequence elsewhere is safe) but must not hammer the same
// endpoint with immediate retries.
var ErrOverloaded = errors.New("wire: server overloaded")

// envelope wraps the payload so gob can transport interface values.
type envelope struct {
	Payload any
}

// ErrorReply carries a server-side error back to the caller. Code
// classifies refusals the client must react to structurally rather
// than textually; 0 (the gob zero value, omitted on the wire, so seed
// encodings are byte-identical) means "plain application error".
type ErrorReply struct {
	Msg  string
	Code int
}

// Wire error codes carried in ErrorReply.Code.
const (
	CodeDeadlineExceeded = 1
	CodeOverloaded       = 2
)

// ErrCode returns the wire code for err: CodeDeadlineExceeded or
// CodeOverloaded for the typed refusals, 0 otherwise.
func ErrCode(err error) int {
	switch {
	case errors.Is(err, ErrDeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	}
	return 0
}

// ErrRemote marks an error that was *delivered by the server* as an
// ErrorReply — the request reached the handler and was answered.
// Resilient clients must not retry these: the failure is the
// application's verdict, not the network's. Transport-level failures
// (reset, timeout, truncation) never carry this mark.
var ErrRemote = errors.New("wire: remote error")

// remoteError converts a received ErrorReply into an error wrapping
// ErrRemote while preserving the server's message text (callers match
// on substrings of it). Typed refusal codes additionally splice in
// their sentinel so errors.Is works across the wire.
func remoteError(e *ErrorReply) error {
	var sentinel error
	switch e.Code {
	case CodeDeadlineExceeded:
		sentinel = ErrDeadlineExceeded
	case CodeOverloaded:
		sentinel = ErrOverloaded
	}
	return fmt.Errorf("wire: server: %s%w", e.Msg, errMarker{also: sentinel})
}

// errMarker splices ErrRemote (and optionally a typed refusal
// sentinel) into a formatted error without altering its message text.
type errMarker struct{ also error }

func (errMarker) Error() string { return "" }
func (m errMarker) Is(target error) bool {
	return target == ErrRemote || (m.also != nil && target == m.also)
}

// SessionRequest is the at-most-once envelope a resilient client wraps
// around every request. SID identifies the client session (a random
// nonzero 64-bit nonce), Seq increments per logical call. A
// session-aware server deduplicates on (SID, Seq): a retried request
// whose original reached the handler gets the cached response instead
// of a second application — the property that makes retry safe for
// non-idempotent protocol operations.
type SessionRequest struct {
	SID uint64
	Seq uint64
	Req any
}

func init() {
	gob.Register(&ErrorReply{})
	gob.Register(&SessionRequest{})
}

// bufPool recycles frame-assembly buffers for the self-contained path
// (Write, Size), which has no connection to hang state off.
var bufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// maxPooledBuf caps the capacity of buffers returned to the pool so a
// single giant content blob does not pin memory forever.
const maxPooledBuf = 1 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		b.Reset()
		bufPool.Put(b)
	}
}

// frame prefixes buf's content (assembled after a 4-byte placeholder)
// with its length and writes the whole thing with one Write call.
func frame(w io.Writer, buf *bytes.Buffer) error {
	body := buf.Len() - 4
	if body > MaxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, body)
	}
	binary.BigEndian.PutUint32(buf.Bytes()[:4], uint32(body))
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

var hdrPlaceholder [8]byte

// Write frames and writes one self-contained message: the frame is a
// complete gob stream carrying its own type descriptors.
func Write(w io.Writer, msg any) error {
	buf := getBuf()
	defer putBuf(buf)
	buf.Reset()
	buf.Write(hdrPlaceholder[:4])
	if err := gob.NewEncoder(buf).Encode(&envelope{Payload: msg}); err != nil {
		return fmt.Errorf("wire: encode %T: %w", msg, err)
	}
	return frame(w, buf)
}

// writeSeed reproduces the seed codec's write path exactly — fresh
// buffer, fresh gob stream, header and body written separately (two
// syscalls) — so E13's baseline measures the seed, not a partially
// optimized hybrid. Production self-contained writes use Write.
func writeSeed(w io.Writer, msg any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&envelope{Payload: msg}); err != nil {
		return fmt.Errorf("wire: encode %T: %w", msg, err)
	}
	if buf.Len() > MaxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// Read reads one self-contained framed message.
func Read(r io.Reader) (any, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessage {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return env.Payload, nil
}

// Size returns the self-contained encoded frame size of msg — used by
// experiments that report wire bytes (VO sizes, sync traffic). It
// deliberately measures the seed codec: a per-message figure that does
// not depend on what else a connection has carried.
func Size(msg any) (int, error) {
	buf := getBuf()
	defer putBuf(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(&envelope{Payload: msg}); err != nil {
		return 0, err
	}
	return buf.Len() + 4, nil
}

// Encoder writes framed messages into one persistent gob stream. Not
// safe for concurrent use; callers serialize (Conn does, Serve is a
// single loop).
type Encoder struct {
	w      io.Writer
	buf    bytes.Buffer // reused frame-assembly buffer
	enc    *gob.Encoder
	broken error
}

// NewEncoder returns a streaming encoder over w.
func NewEncoder(w io.Writer) *Encoder {
	e := &Encoder{w: w}
	e.enc = gob.NewEncoder(&e.buf)
	return e
}

// Encode frames and writes one message, header and body in a single
// Write call. An encode error poisons the stream (the gob encoder's
// descriptor bookkeeping may no longer match what reached the peer),
// so every subsequent Encode fails until the connection is replaced.
func (e *Encoder) Encode(msg any) error {
	return e.EncodeBudget(msg, 0)
}

// EncodeBudget is Encode with a deadline budget stamped into the frame
// header: the remaining time the *sender's* caller is still willing to
// wait, measured at encode time. Each hop re-derives its own remaining
// budget before forwarding, which is what decrements the budget across
// hops without any clock synchronization. budget <= 0 encodes a plain
// frame (identical bytes to Encode).
func (e *Encoder) EncodeBudget(msg any, budget time.Duration) error {
	if e.broken != nil {
		return e.broken
	}
	hdr := 4
	if budget > 0 {
		hdr = 8
	}
	e.buf.Reset()
	e.buf.Write(hdrPlaceholder[:hdr])
	if err := e.enc.Encode(&envelope{Payload: msg}); err != nil {
		e.broken = fmt.Errorf("wire: stream poisoned by encode of %T: %w", msg, err)
		return fmt.Errorf("wire: encode %T: %w", msg, err)
	}
	body := e.buf.Len() - hdr
	if body > MaxMessage {
		err := fmt.Errorf("%w: %d bytes", ErrTooLarge, body)
		e.broken = err
		return err
	}
	b := e.buf.Bytes()
	word := uint32(body)
	if budget > 0 {
		us := budget.Microseconds()
		if us < 1 {
			us = 1 // a set flag always carries a nonzero budget
		}
		if us > maxBudgetUS {
			us = maxBudgetUS
		}
		word |= budgetFlag
		binary.BigEndian.PutUint32(b[4:8], uint32(us))
	}
	binary.BigEndian.PutUint32(b[:4], word)
	if _, err := e.w.Write(b); err != nil {
		err = fmt.Errorf("wire: write frame: %w", err)
		e.broken = err
		return err
	}
	if e.buf.Cap() > maxPooledBuf {
		e.buf = bytes.Buffer{} // drop oversized scratch, keep the stream
	}
	return nil
}

// frameReader feeds a gob.Decoder the concatenated bodies of incoming
// frames, enforcing MaxMessage per frame (header check) and per decoded
// message (budget, reset by Decoder.Decode).
type frameReader struct {
	r        io.Reader
	remain   int    // unread bytes of the current frame
	budget   int    // bytes the current Decode may still consume
	deadline uint32 // microsecond budget from the current message's header, 0 = none
}

func (fr *frameReader) Read(p []byte) (int, error) {
	if fr.remain == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
			return 0, err // io.EOF at a frame boundary = clean shutdown
		}
		word := binary.BigEndian.Uint32(hdr[:])
		if word&budgetFlag != 0 {
			var bhdr [4]byte
			if _, err := io.ReadFull(fr.r, bhdr[:]); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return 0, err
			}
			fr.deadline = binary.BigEndian.Uint32(bhdr[:])
			word &^= budgetFlag
		}
		if word > MaxMessage {
			return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, word)
		}
		fr.remain = int(word)
	}
	if fr.budget <= 0 {
		return 0, fmt.Errorf("%w: message spans frames past limit", ErrTooLarge)
	}
	if len(p) > fr.remain {
		p = p[:fr.remain]
	}
	if len(p) > fr.budget {
		p = p[:fr.budget]
	}
	n, err := fr.r.Read(p)
	fr.remain -= n
	fr.budget -= n
	if err == io.EOF && fr.remain > 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// Decoder reads framed messages from one persistent gob stream. Not
// safe for concurrent use.
type Decoder struct {
	fr  *frameReader
	dec *gob.Decoder
}

// NewDecoder returns a streaming decoder over r. The decoder owns the
// read half of the stream: it buffers beneath the frame layer so a
// header and its body usually cost one syscall, not two.
func NewDecoder(r io.Reader) *Decoder {
	if _, ok := r.(*bufio.Reader); !ok {
		r = bufio.NewReader(r)
	}
	fr := &frameReader{r: r}
	return &Decoder{fr: fr, dec: gob.NewDecoder(fr)}
}

// Decode reads the next message. It returns io.EOF when the stream
// ends cleanly at a frame boundary.
func (d *Decoder) Decode() (any, error) {
	d.fr.budget = MaxMessage
	d.fr.deadline = 0
	var env envelope
	if err := d.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return env.Payload, nil
}

// Budget returns the deadline budget carried by the last decoded
// message's frame header, or 0 if it carried none. The value is the
// remaining time the peer's caller was willing to wait, measured when
// the peer encoded the frame; the receiver should anchor its own
// deadline at decode time (time already spent on the wire then counts
// against the sender, which is the conservative direction).
func (d *Decoder) Budget() time.Duration {
	return time.Duration(d.fr.deadline) * time.Microsecond
}

// Conn is a synchronous request/response client over any stream,
// using the streaming codec. It serializes concurrent callers.
type Conn struct {
	mu  sync.Mutex
	enc *Encoder
	dec *Decoder
	c   io.Closer // optional
}

// NewConn wraps a stream with the streaming codec. If rw also
// implements io.Closer, Close closes it. The peer must serve the same
// codec (wire.Serve / transport default).
func NewConn(rw io.ReadWriter) *Conn {
	c, _ := rw.(io.Closer)
	return &Conn{enc: NewEncoder(rw), dec: NewDecoder(rw), c: c}
}

// Call sends req and waits for the reply. A server-side ErrorReply is
// converted into an error.
func (c *Conn) Call(req any) (any, error) {
	return c.CallBudget(req, 0)
}

// CallBudget is Call with a deadline budget propagated in the frame
// header: the server sheds the request (typed ErrDeadlineExceeded,
// before touching state) if the budget has expired by the time the
// request is dispatched. budget <= 0 sends a plain frame.
func (c *Conn) CallBudget(req any, budget time.Duration) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.EncodeBudget(req, budget); err != nil {
		return nil, err
	}
	resp, err := c.dec.Decode()
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*ErrorReply); ok {
		return nil, remoteError(e)
	}
	return resp, nil
}

// Close closes the underlying stream when possible.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// LegacyConn is Conn over the seed's self-contained per-message codec.
// It exists for the E13 baseline and for peers that must remain
// stateless per message.
type LegacyConn struct {
	mu sync.Mutex
	rw io.ReadWriter
	c  io.Closer
}

// NewLegacyConn wraps a stream with the self-contained codec. The peer
// must serve the same codec (wire.ServeLegacy / transport compat mode).
func NewLegacyConn(rw io.ReadWriter) *LegacyConn {
	c, _ := rw.(io.Closer)
	return &LegacyConn{rw: rw, c: c}
}

// Call sends req and waits for the reply, one self-contained gob
// stream per frame, using the seed's exact write path.
func (c *LegacyConn) Call(req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeSeed(c.rw, req); err != nil {
		return nil, err
	}
	resp, err := Read(c.rw)
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*ErrorReply); ok {
		return nil, remoteError(e)
	}
	return resp, nil
}

// Close closes the underlying stream when possible.
func (c *LegacyConn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// Serve answers requests on a stream until it closes, using the
// streaming codec: each incoming message is passed to handler and the
// result (or an ErrorReply) written back. Returns nil on clean EOF.
func Serve(rw io.ReadWriter, handler func(any) (any, error)) error {
	return ServeBudget(rw, func(req any, _ time.Duration) (any, error) {
		return handler(req)
	})
}

// ServeBudget is Serve with deadline propagation: the handler receives
// the budget carried in each request's frame header (0 if none),
// anchored at decode time. Typed refusals (ErrDeadlineExceeded,
// ErrOverloaded) returned by the handler cross the wire as coded
// ErrorReplies so the client can match them with errors.Is.
func ServeBudget(rw io.ReadWriter, handler func(req any, budget time.Duration) (any, error)) error {
	enc, dec := NewEncoder(rw), NewDecoder(rw)
	for {
		req, err := dec.Decode()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp, err := handler(req, dec.Budget())
		if err != nil {
			resp = &ErrorReply{Msg: err.Error(), Code: ErrCode(err)}
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
	}
}

// ServeLegacy is Serve over the seed's self-contained codec, for peers
// using NewLegacyConn (E13 baseline, compat tests).
func ServeLegacy(rw io.ReadWriter, handler func(any) (any, error)) error {
	for {
		req, err := Read(rw)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp, err := handler(req)
		if err != nil {
			resp = &ErrorReply{Msg: err.Error()}
		}
		if err := writeSeed(rw, resp); err != nil {
			return err
		}
	}
}
