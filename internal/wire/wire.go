// Package wire implements the framing and codec used on every network
// connection: length-prefixed, gob-encoded envelopes. Each message is
// a self-contained gob stream, so readers never depend on connection
// history, and a hard size limit protects against hostile peers (the
// server is untrusted, after all).
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxMessage is the largest accepted frame (16 MiB) — far above any
// legitimate VO or content blob in this system, far below a memory
// exhaustion attack.
const MaxMessage = 16 << 20

// ErrTooLarge is returned for frames exceeding MaxMessage.
var ErrTooLarge = errors.New("wire: message exceeds size limit")

// envelope wraps the payload so gob can transport interface values.
type envelope struct {
	Payload any
}

// ErrorReply carries a server-side error back to the caller.
type ErrorReply struct {
	Msg string
}

func init() {
	gob.Register(&ErrorReply{})
}

// Write frames and writes one message.
func Write(w io.Writer, msg any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&envelope{Payload: msg}); err != nil {
		return fmt.Errorf("wire: encode %T: %w", msg, err)
	}
	if buf.Len() > MaxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// Read reads one framed message.
func Read(r io.Reader) (any, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessage {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return env.Payload, nil
}

// Size returns the encoded frame size of msg — used by experiments
// that report wire bytes (VO sizes, sync traffic).
func Size(msg any) (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&envelope{Payload: msg}); err != nil {
		return 0, err
	}
	return buf.Len() + 4, nil
}

// Conn is a synchronous request/response client over any stream. It
// serializes concurrent callers.
type Conn struct {
	mu sync.Mutex
	rw io.ReadWriter
	c  io.Closer // optional
}

// NewConn wraps a stream. If rw also implements io.Closer, Close
// closes it.
func NewConn(rw io.ReadWriter) *Conn {
	c, _ := rw.(io.Closer)
	return &Conn{rw: rw, c: c}
}

// Call sends req and waits for the reply. A server-side ErrorReply is
// converted into an error.
func (c *Conn) Call(req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := Write(c.rw, req); err != nil {
		return nil, err
	}
	resp, err := Read(c.rw)
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*ErrorReply); ok {
		return nil, fmt.Errorf("wire: server: %s", e.Msg)
	}
	return resp, nil
}

// Close closes the underlying stream when possible.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// Serve answers requests on a stream until it closes: each incoming
// message is passed to handler and the result (or an ErrorReply)
// written back. Returns nil on clean EOF.
func Serve(rw io.ReadWriter, handler func(any) (any, error)) error {
	for {
		req, err := Read(rw)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp, err := handler(req)
		if err != nil {
			resp = &ErrorReply{Msg: err.Error()}
		}
		if err := Write(rw, resp); err != nil {
			return err
		}
	}
}
