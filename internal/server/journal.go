package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"trustedcvs/internal/core"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/wal"
)

// The op journal is the server-side half of the crash-durable story:
// the periodic snapshot (persist.go) loses every operation applied
// after the last save, and on restart each client's next sync would —
// correctly, but needlessly — raise a rollback alarm over that acked
// tail. Journaling every applied request (and every accepted content
// push — the blobs of acked commits must survive alongside their
// authenticated records) lets recovery re-apply the tail on top of
// the restored snapshot, shrinking the rollback window from one save
// interval to at most one journal epoch.
//
// The journal deliberately does NOT fsync per operation: frames are
// batched and made durable at epoch rotation (wal.SyncOnRotate), so
// the hot path never waits on the disk. The durability contract is
// therefore weaker than the client-side audit WAL — a hard crash can
// lose the current epoch's tail — and that is fine: clients hold the
// authoritative per-op durable record of their own obligations; the
// server journal only narrows the honest-crash rollback window.

// DefaultJournalEpoch is the fsync/rotation batch for deployments that
// do not run epoch-batched audit (no -epoch-len to align with).
const DefaultJournalEpoch = 64

// journalEntry is one applied operation as the journal records it: the
// request plus the global counter its apply landed on. The counter
// keys replay ordering — concurrent handlers append out of order.
// Alternatively (Push set, G zero) it is one accepted content push:
// the blobs of acked commits must survive the same crashes their
// authenticated records do, or recovery restores a history whose
// content is gone.
type journalEntry struct {
	G    uint64
	Req  *core.OpRequest
	Push *core.PushContentRequest
}

// OpJournal appends every successfully applied operation to a
// segmented WAL (internal/wal), batching fsyncs at epoch rotation.
// Append failures are sticky: the journal disables itself rather than
// stalling or crashing the serving path, and Err exposes the
// degradation so the operator can see durability has narrowed back to
// checkpoint cadence.
type OpJournal struct {
	epochLen uint64

	mu sync.Mutex
	w  *wal.WAL
	er error
}

// OpenOpJournal opens (creating or repairing) the op journal at dir.
// epochLen aligns fsync batching and truncation with the deployment's
// audit epochs (0 = DefaultJournalEpoch). fs is the filesystem to
// journal through (nil = the real one).
func OpenOpJournal(dir string, fs fault.FS, epochLen uint64) (*OpJournal, error) {
	if epochLen == 0 {
		epochLen = DefaultJournalEpoch
	}
	w, err := wal.Open(wal.Options{Dir: dir, FS: fs, Sync: wal.SyncOnRotate})
	if err != nil {
		return nil, fmt.Errorf("server: open op journal: %w", err)
	}
	return &OpJournal{epochLen: epochLen, w: w}, nil
}

// record journals one applied operation. Called by the decorator after
// the protocol server has acked the op; errors flip the sticky degrade
// state instead of failing the operation (the client already holds its
// own durable obligation record).
func (j *OpJournal) record(req *core.OpRequest, resp any) {
	g := appliedG(resp)
	if g == 0 {
		return // not a Protocol II response; nothing to key replay on
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&journalEntry{G: g, Req: req}); err != nil {
		j.disable(fmt.Errorf("server: encode journal entry: %w", err))
		return
	}
	j.mu.Lock()
	w, disabled := j.w, j.er != nil
	j.mu.Unlock()
	if disabled {
		return
	}
	if err := w.Append((g-1)/j.epochLen, buf.Bytes()); err != nil {
		j.disable(err)
	}
}

// RecordPush journals one accepted content push. ctr is the database
// counter at record time; it only keys fsync batching and truncation —
// a push journaled at counter c lands in an epoch no checkpoint below
// c can truncate, and a checkpoint above c snapshots the store with
// the push already in it, so either the snapshot or the journal holds
// every acked blob. Errors degrade exactly as record's do.
func (j *OpJournal) RecordPush(req *core.PushContentRequest, ctr uint64) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&journalEntry{Push: req}); err != nil {
		j.disable(fmt.Errorf("server: encode journal push: %w", err))
		return
	}
	j.mu.Lock()
	w, disabled := j.w, j.er != nil
	j.mu.Unlock()
	if disabled {
		return
	}
	if err := w.Append(ctr/j.epochLen, buf.Bytes()); err != nil {
		j.disable(err)
	}
}

func (j *OpJournal) disable(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.er == nil {
		j.er = err
	}
}

// Err reports the sticky failure that disabled the journal, if any.
func (j *OpJournal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.er
}

// TruncateThrough drops journal segments fully covered by a durable
// checkpoint at global counter ctr. Epoch e holds counters
// (e·len, (e+1)·len], so only epochs whose last counter is ≤ ctr go.
func (j *OpJournal) TruncateThrough(ctr uint64) error {
	if ctr < j.epochLen {
		return nil
	}
	return j.w.TruncateThrough(ctr/j.epochLen - 1)
}

// Close seals the journal, fsyncing any batched tail.
func (j *OpJournal) Close() error { return j.w.Close() }

// WithOpJournal decorates a server so every successfully applied
// operation is recorded in j before the response is released. Composes
// with WithOpHook; wrap the honest server (checkpointing unwraps both).
func WithOpJournal(s Server, j *OpJournal) Server {
	return &journaled{Server: s, j: j}
}

type journaled struct {
	Server
	j *OpJournal
}

func (h *journaled) HandleOp(req *core.OpRequest) (any, error) {
	//lint:ignore verifyflow the server applies client ops to its own UNtrusted store by design; integrity is enforced client-side by VO verification against pinned registers (AUDIT.md "server trusted with nothing")
	resp, err := h.Server.HandleOp(req)
	if err == nil {
		h.j.record(req, resp)
	}
	return resp, err
}

// Fork drops the journal: a fork's history is the adversary's private
// fiction, and replaying it over the honest snapshot would corrupt the
// very state the journal exists to protect.
func (h *journaled) Fork() Server { return h.Server.Fork() }

// appliedG extracts the post-apply global counter from a Protocol II
// response (single-tree Ctr is the pre-op counter; forest responses
// carry the global counter directly).
func appliedG(resp any) uint64 {
	r, ok := resp.(*core.OpResponseII)
	if !ok {
		return 0
	}
	if r.GCtr != 0 {
		return r.GCtr
	}
	return r.Ctr + 1
}

// ReplayOpJournal re-applies, in counter order, every journaled
// operation above the restored server's head, and re-pushes every
// journaled content blob into store. Op replay stops cleanly at the
// first counter gap: everything past a lost frame was never made
// durable as a batch, and applying it out of order would fabricate a
// history no client ever acked. Push replay is unconditional — the
// blob store is content-addressed and the archive only extends in
// order, so re-pushing what the snapshot already holds is a no-op and
// a stray blob past a gap is unreferenced storage, never state.
// Returns how many operations and pushes were re-applied. Call before
// opening the journal for appending and before the transport starts
// serving.
func ReplayOpJournal(dir string, s Server, store *cvs.Store) (int, int, error) {
	from := s.DB().Ctr()
	var entries []journalEntry
	pushes := 0
	err := wal.Replay(dir, func(fr wal.Record) error {
		var e journalEntry
		if err := gob.NewDecoder(bytes.NewReader(fr.Payload)).Decode(&e); err != nil {
			return fmt.Errorf("server: decode journal entry: %w", err)
		}
		if e.Push != nil {
			if err := store.Push(e.Push.Path, e.Push.Rev, e.Push.Content); err != nil {
				return fmt.Errorf("server: replay journal push %s@%d: %w", e.Push.Path, e.Push.Rev, err)
			}
			pushes++
			return nil
		}
		if e.G > from {
			entries = append(entries, e)
		}
		return nil
	})
	if err != nil {
		return 0, pushes, err
	}
	sort.Slice(entries, func(i, k int) bool { return entries[i].G < entries[k].G })
	applied := 0
	next := from + 1
	for _, e := range entries {
		if e.G < next {
			continue // duplicate frame (rewritten after a partial truncate)
		}
		if e.G > next {
			break // gap: the tail past a lost frame is unusable
		}
		if _, err := s.HandleOp(e.Req); err != nil {
			return applied, pushes, fmt.Errorf("server: replay journal op %d: %w", e.G, err)
		}
		applied++
		next++
	}
	return applied, pushes, nil
}
