package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// p2WithHistory builds a Protocol II server with a few verified
// commits, returning the server, store, and its encoded snapshot.
func p2WithHistory(t *testing.T, commits int) (Server, *cvs.Store, []byte) {
	t.Helper()
	db := vdb.New(0)
	srv := NewP2(db)
	store := cvs.NewStore()
	user := proto2.NewUser(0, db.Root(), 1000)
	for i := 1; i <= commits; i++ {
		content := fmt.Sprintf("v%d\n", i)
		op := &cvs.CommitOp{
			Files:  []cvs.CommitFile{{Path: "f", Hash: rcs.HashContent([]byte(content))}},
			Author: "u0", TimeUnix: int64(i),
		}
		raw, err := srv.HandleOp(user.Request(op))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := user.HandleResponse(op, raw.(*core.OpResponseII)); err != nil {
			t.Fatal(err)
		}
		if err := store.Push("f", uint64(i), []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := SaveP2(&buf, srv, store); err != nil {
		t.Fatal(err)
	}
	return srv, store, buf.Bytes()
}

// TestLoadP2RejectsCorruptSnapshots: every way a checkpoint can rot on
// disk must produce a clean error — never a panic, never a silently
// restored wrong state (which would raise deviation alarms on every
// client whose registers commit to the real history).
func TestLoadP2RejectsCorruptSnapshots(t *testing.T) {
	_, _, good := p2WithHistory(t, 3)
	if _, _, err := LoadP2(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot must load: %v", err)
	}

	cases := map[string][]byte{
		"zero-length":      {},
		"magic only":       good[:4],
		"header truncated": good[:len(snapMagic)+3],
		"payload half":     good[:len(good)/2],
		"footer truncated": good[:len(good)-7],
	}
	for i := 0; i < len(good); i += len(good)/16 + 1 {
		flipped := append([]byte(nil), good...)
		flipped[i] ^= 0x40
		cases[fmt.Sprintf("bit flip at %d", i)] = flipped
	}
	for name, b := range cases {
		if _, _, err := LoadP2(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: corrupt snapshot loaded without error", name)
		}
	}
}

func TestLoadP3RejectsCorruptSnapshots(t *testing.T) {
	db := vdb.New(0)
	srv := NewP3(db)
	var buf bytes.Buffer
	if err := SaveP3(&buf, srv, cvs.NewStore()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, _, err := LoadP3(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot must load: %v", err)
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x01
	for name, b := range map[string][]byte{
		"zero-length": {},
		"truncated":   good[:len(good)/3],
		"bit flip":    flipped,
	} {
		if _, _, err := LoadP3(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: corrupt snapshot loaded without error", name)
		}
	}
}

func writeGen(t *testing.T, fs fault.FS, path string, srv Server, store *cvs.Store) error {
	t.Helper()
	return WriteSnapshotFile(fs, path, func(w io.Writer) error {
		return SaveP2(w, srv, store)
	})
}

func TestWriteSnapshotFileRotatesAndAutoLoads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")

	if _, _, err := LoadP2Auto(path); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: want ErrNoSnapshot, got %v", err)
	}

	srv, store, _ := p2WithHistory(t, 2)
	if err := writeGen(t, fault.OS, path, srv, store); err != nil {
		t.Fatal(err)
	}
	gen1Root := srv.DB().Root()

	srv2, store2, _ := p2WithHistory(t, 5)
	if err := writeGen(t, fault.OS, path, srv2, store2); err != nil {
		t.Fatal(err)
	}

	snap, from, err := LoadP2Auto(path)
	if err != nil {
		t.Fatal(err)
	}
	if from != path {
		t.Fatalf("loaded from %s, want current generation", from)
	}
	restored, _, err := RestoreP2(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.DB().Root() != srv2.DB().Root() {
		t.Fatal("current generation root mismatch")
	}

	// Corrupt the current generation in place: auto-load must fall back
	// to the rotated previous one.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, from, err = LoadP2Auto(path)
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	if from != prevGeneration(path) {
		t.Fatalf("loaded from %s, want previous generation", from)
	}
	restored, _, err = RestoreP2(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.DB().Root() != gen1Root {
		t.Fatal("previous generation root mismatch")
	}
}

// TestWriteSnapshotFileCrashWindows walks the crash points of the
// write-sync-rotate-rename-syncdir sequence and checks that a reboot
// (plain OS reads over what actually hit the "disk") always recovers a
// verifiable generation — or reports a clean first-boot.
func TestWriteSnapshotFileCrashWindows(t *testing.T) {
	srv, store, _ := p2WithHistory(t, 2)
	srvNew, storeNew, _ := p2WithHistory(t, 6)

	t.Run("crash before first install", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.snap")
		ffs := &fault.FaultyFS{CrashAtRename: 1}
		if err := writeGen(t, ffs, path, srv, store); !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("want simulated crash, got %v", err)
		}
		if _, _, err := LoadP2Auto(path); !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("nothing was ever installed: want ErrNoSnapshot, got %v", err)
		}
		// Reboot: a clean retry succeeds over the leftover temp file.
		if err := writeGen(t, fault.OS, path, srv, store); err != nil {
			t.Fatal(err)
		}
		if _, from, err := LoadP2Auto(path); err != nil || from != path {
			t.Fatalf("post-reboot load: %s %v", from, err)
		}
	})

	t.Run("crash between rotate and install", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.snap")
		if err := writeGen(t, fault.OS, path, srv, store); err != nil {
			t.Fatal(err)
		}
		// Rename #1 rotates the good generation aside, rename #2 would
		// install the new one: crash between them.
		ffs := &fault.FaultyFS{CrashAtRename: 2}
		if err := writeGen(t, ffs, path, srvNew, storeNew); !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("want simulated crash, got %v", err)
		}
		snap, from, err := LoadP2Auto(path)
		if err != nil {
			t.Fatalf("recovery after rotate-window crash: %v", err)
		}
		if from != prevGeneration(path) {
			t.Fatalf("loaded from %s, want rotated previous generation", from)
		}
		restored, _, err := RestoreP2(snap)
		if err != nil {
			t.Fatal(err)
		}
		if restored.DB().Root() != srv.DB().Root() {
			t.Fatal("recovered generation is not the pre-crash state")
		}
	})

	t.Run("torn write is caught at load", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.snap")
		if err := writeGen(t, fault.OS, path, srv, store); err != nil {
			t.Fatal(err)
		}
		// The lying disk: the payload write persists half its bytes but
		// reports success, so WriteSnapshotFile completes "cleanly".
		// Writes: 1 magic, 2 length, 3 payload, 4 footer.
		ffs := &fault.FaultyFS{ShortWriteAt: 3}
		if err := writeGen(t, ffs, path, srvNew, storeNew); err != nil {
			t.Fatalf("torn write is silent by design, got %v", err)
		}
		snap, from, err := LoadP2Auto(path)
		if err != nil {
			t.Fatalf("recovery after torn write: %v", err)
		}
		if from != prevGeneration(path) {
			t.Fatalf("loaded from %s, want fallback to previous generation", from)
		}
		restored, _, err := RestoreP2(snap)
		if err != nil {
			t.Fatal(err)
		}
		if restored.DB().Root() != srv.DB().Root() {
			t.Fatal("recovered generation is not the last durable state")
		}
	})

	t.Run("crash before data sync", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.snap")
		if err := writeGen(t, fault.OS, path, srv, store); err != nil {
			t.Fatal(err)
		}
		ffs := &fault.FaultyFS{CrashAtSync: 1}
		if err := writeGen(t, ffs, path, srvNew, storeNew); !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("want simulated crash, got %v", err)
		}
		// The install never happened; the old generation is untouched.
		if _, from, err := LoadP2Auto(path); err != nil || from != path {
			t.Fatalf("old generation must survive: %s %v", from, err)
		}
	})
}

// TestForestCrashRecoveryTornWrite kills a 4-shard forest server with a
// torn checkpoint write and reboots it. The recovered generation must
// reproduce every per-shard register chain and the root-of-roots
// exactly; clients whose registers commit to the durable history sync
// cleanly across the reboot; and the restored deployment still raises
// the typed TornTransaction detection when the server tears a
// cross-shard transaction post-restore — recovery must not blunt the
// forest's atomicity defenses.
func TestForestCrashRecoveryTornWrite(t *testing.T) {
	const shards = 4
	db := vdb.NewSharded(0, shards)
	srv := NewP2(db)
	store := cvs.NewStore()

	// Users 0 and 1 write the durable generation; user 2 writes only the
	// tail the crash will lose, so the survivors' registers stay aligned
	// with the recovered history.
	users := make([]*proto2.User, 3)
	for i := range users {
		users[i] = proto2.NewForestUser(sig.UserID(i), db.ShardRoots(), 1<<20)
	}
	do := func(s Server, u int, op vdb.Op) (any, error) {
		resp, err := s.HandleOp(users[u].Request(op))
		if err != nil {
			return nil, err
		}
		if cross, ok := op.(*vdb.CrossOp); ok {
			return users[u].HandleResponseForest(cross, resp.(*core.OpResponseForest))
		}
		return users[u].HandleResponse(op, resp.(*core.OpResponseII))
	}
	must := func(s Server, u int, op vdb.Op) {
		t.Helper()
		if _, err := do(s, u, op); err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
	}
	write := func(k, v string) vdb.Op {
		return &vdb.WriteOp{Puts: []vdb.KV{{Key: k, Val: []byte(v)}}}
	}

	// Populate every shard's register chain, plus one cross-shard
	// transaction, keeping one key per shard for later use.
	byShard := make([]string, shards)
	for i, n := 0, 0; n < shards; i++ {
		if i == 1024 {
			t.Fatalf("1024 keys cover only %d of %d shards", n, shards)
		}
		k := fmt.Sprintf("key-%d", i)
		if s := vdb.RouteKey(k, shards); byShard[s] == "" {
			byShard[s] = k
			must(srv, n%2, write(k, "gen1"))
			n++
		}
	}
	ka, kb := byShard[0], byShard[1]
	must(srv, 0, &vdb.CrossOp{Legs: []vdb.Op{write(ka, "x1"), write(kb, "x2")}})

	// The durable generation.
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := writeGen(t, fault.OS, path, srv, store); err != nil {
		t.Fatal(err)
	}
	wantHeads := db.Heads()
	wantGCtr, wantRoot := db.Head()

	// The doomed tail: user 2 keeps operating, then the next checkpoint
	// tears mid-payload (the lying disk persists half the bytes and
	// reports success), and the process dies.
	must(srv, 2, write(ka, "lost"))
	must(srv, 2, &vdb.CrossOp{Legs: []vdb.Op{write(ka, "l1"), write(kb, "l2")}})
	if err := writeGen(t, &fault.FaultyFS{ShortWriteAt: 3}, path, srv, store); err != nil {
		t.Fatalf("torn write is silent by design, got %v", err)
	}

	// Reboot: auto-load must reject the torn generation and fall back to
	// the rotated previous one.
	snap, from, err := LoadP2Auto(path)
	if err != nil {
		t.Fatalf("recovery after torn checkpoint: %v", err)
	}
	if from != prevGeneration(path) {
		t.Fatalf("loaded from %s, want fallback to previous generation", from)
	}
	restored, _, err := RestoreP2(snap)
	if err != nil {
		t.Fatal(err)
	}

	// Every per-shard register chain and the root-of-roots survive.
	rdb := restored.DB()
	if rdb.Shards() != shards {
		t.Fatalf("restored forest has %d shards, want %d", rdb.Shards(), shards)
	}
	gotHeads := rdb.Heads()
	for s, h := range gotHeads {
		if h != wantHeads[s] {
			t.Fatalf("shard %d head (%d, %s), want (%d, %s)",
				s, h.Ctr, h.Root.Short(), wantHeads[s].Ctr, wantHeads[s].Root.Short())
		}
	}
	gctr, root := rdb.Head()
	if gctr != wantGCtr || root != wantRoot {
		t.Fatalf("restored head (%d, %s), want (%d, %s)", gctr, root.Short(), wantGCtr, wantRoot.Short())
	}
	if f := vdb.FoldHeads(gotHeads); f != root {
		t.Fatalf("fold of restored shard heads %s != published root %s", f.Short(), root.Short())
	}

	// The survivors' registers commit to exactly the recovered history:
	// a sync barrier over them closes with no alarm.
	reports := []core.SyncReportII{users[0].SyncReport(), users[1].SyncReport()}
	for u := 0; u < 2; u++ {
		if err := users[u].CompleteSync(reports); err != nil {
			t.Fatalf("user %d sync across reboot: %v", u, err)
		}
	}

	// Post-restore atomicity attack: the server proves a two-leg
	// cross-shard transaction on a throwaway fork but commits only one
	// leg for real. The victim's next operation is served from the real
	// history, whose head vector excludes the second leg — the detection
	// must be the typed TornTransaction, exactly as on a never-crashed
	// server.
	cross := &vdb.CrossOp{Legs: []vdb.Op{write(ka, "tx-a"), write(kb, "tx-b")}}
	req := users[0].Request(cross)
	fork := restored.Fork()
	forged, err := fork.HandleOp(req)
	if err != nil {
		t.Fatalf("fork cross: %v", err)
	}
	if _, err := restored.HandleOp(users[0].Request(cross.Legs[0])); err != nil {
		t.Fatalf("torn main leg: %v", err)
	}
	if _, err := users[0].HandleResponseForest(cross, forged.(*core.OpResponseForest)); err != nil {
		t.Fatalf("victim rejected a fully valid (forked) cross proof: %v", err)
	}
	_, err = do(restored, 0, &vdb.ReadOp{Keys: []string{ka}})
	de, ok := core.AsDetection(err)
	if !ok {
		t.Fatalf("torn commit went undetected after recovery: %v", err)
	}
	if de.Class != core.TornTransaction {
		t.Fatalf("detected class %v, want %v", de.Class, core.TornTransaction)
	}
}
