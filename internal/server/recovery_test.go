package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/vdb"
)

// p2WithHistory builds a Protocol II server with a few verified
// commits, returning the server, store, and its encoded snapshot.
func p2WithHistory(t *testing.T, commits int) (Server, *cvs.Store, []byte) {
	t.Helper()
	db := vdb.New(0)
	srv := NewP2(db)
	store := cvs.NewStore()
	user := proto2.NewUser(0, db.Root(), 1000)
	for i := 1; i <= commits; i++ {
		content := fmt.Sprintf("v%d\n", i)
		op := &cvs.CommitOp{
			Files:  []cvs.CommitFile{{Path: "f", Hash: rcs.HashContent([]byte(content))}},
			Author: "u0", TimeUnix: int64(i),
		}
		raw, err := srv.HandleOp(user.Request(op))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := user.HandleResponse(op, raw.(*core.OpResponseII)); err != nil {
			t.Fatal(err)
		}
		if err := store.Push("f", uint64(i), []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := SaveP2(&buf, srv, store); err != nil {
		t.Fatal(err)
	}
	return srv, store, buf.Bytes()
}

// TestLoadP2RejectsCorruptSnapshots: every way a checkpoint can rot on
// disk must produce a clean error — never a panic, never a silently
// restored wrong state (which would raise deviation alarms on every
// client whose registers commit to the real history).
func TestLoadP2RejectsCorruptSnapshots(t *testing.T) {
	_, _, good := p2WithHistory(t, 3)
	if _, _, err := LoadP2(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot must load: %v", err)
	}

	cases := map[string][]byte{
		"zero-length":      {},
		"magic only":       good[:4],
		"header truncated": good[:len(snapMagic)+3],
		"payload half":     good[:len(good)/2],
		"footer truncated": good[:len(good)-7],
	}
	for i := 0; i < len(good); i += len(good)/16 + 1 {
		flipped := append([]byte(nil), good...)
		flipped[i] ^= 0x40
		cases[fmt.Sprintf("bit flip at %d", i)] = flipped
	}
	for name, b := range cases {
		if _, _, err := LoadP2(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: corrupt snapshot loaded without error", name)
		}
	}
}

func TestLoadP3RejectsCorruptSnapshots(t *testing.T) {
	db := vdb.New(0)
	srv := NewP3(db)
	var buf bytes.Buffer
	if err := SaveP3(&buf, srv, cvs.NewStore()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, _, err := LoadP3(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot must load: %v", err)
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x01
	for name, b := range map[string][]byte{
		"zero-length": {},
		"truncated":   good[:len(good)/3],
		"bit flip":    flipped,
	} {
		if _, _, err := LoadP3(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: corrupt snapshot loaded without error", name)
		}
	}
}

func writeGen(t *testing.T, fs fault.FS, path string, srv Server, store *cvs.Store) error {
	t.Helper()
	return WriteSnapshotFile(fs, path, func(w io.Writer) error {
		return SaveP2(w, srv, store)
	})
}

func TestWriteSnapshotFileRotatesAndAutoLoads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")

	if _, _, err := LoadP2Auto(path); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: want ErrNoSnapshot, got %v", err)
	}

	srv, store, _ := p2WithHistory(t, 2)
	if err := writeGen(t, fault.OS, path, srv, store); err != nil {
		t.Fatal(err)
	}
	gen1Root := srv.DB().Root()

	srv2, store2, _ := p2WithHistory(t, 5)
	if err := writeGen(t, fault.OS, path, srv2, store2); err != nil {
		t.Fatal(err)
	}

	snap, from, err := LoadP2Auto(path)
	if err != nil {
		t.Fatal(err)
	}
	if from != path {
		t.Fatalf("loaded from %s, want current generation", from)
	}
	restored, _, err := RestoreP2(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.DB().Root() != srv2.DB().Root() {
		t.Fatal("current generation root mismatch")
	}

	// Corrupt the current generation in place: auto-load must fall back
	// to the rotated previous one.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, from, err = LoadP2Auto(path)
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	if from != prevGeneration(path) {
		t.Fatalf("loaded from %s, want previous generation", from)
	}
	restored, _, err = RestoreP2(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.DB().Root() != gen1Root {
		t.Fatal("previous generation root mismatch")
	}
}

// TestWriteSnapshotFileCrashWindows walks the crash points of the
// write-sync-rotate-rename-syncdir sequence and checks that a reboot
// (plain OS reads over what actually hit the "disk") always recovers a
// verifiable generation — or reports a clean first-boot.
func TestWriteSnapshotFileCrashWindows(t *testing.T) {
	srv, store, _ := p2WithHistory(t, 2)
	srvNew, storeNew, _ := p2WithHistory(t, 6)

	t.Run("crash before first install", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.snap")
		ffs := &fault.FaultyFS{CrashAtRename: 1}
		if err := writeGen(t, ffs, path, srv, store); !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("want simulated crash, got %v", err)
		}
		if _, _, err := LoadP2Auto(path); !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("nothing was ever installed: want ErrNoSnapshot, got %v", err)
		}
		// Reboot: a clean retry succeeds over the leftover temp file.
		if err := writeGen(t, fault.OS, path, srv, store); err != nil {
			t.Fatal(err)
		}
		if _, from, err := LoadP2Auto(path); err != nil || from != path {
			t.Fatalf("post-reboot load: %s %v", from, err)
		}
	})

	t.Run("crash between rotate and install", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.snap")
		if err := writeGen(t, fault.OS, path, srv, store); err != nil {
			t.Fatal(err)
		}
		// Rename #1 rotates the good generation aside, rename #2 would
		// install the new one: crash between them.
		ffs := &fault.FaultyFS{CrashAtRename: 2}
		if err := writeGen(t, ffs, path, srvNew, storeNew); !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("want simulated crash, got %v", err)
		}
		snap, from, err := LoadP2Auto(path)
		if err != nil {
			t.Fatalf("recovery after rotate-window crash: %v", err)
		}
		if from != prevGeneration(path) {
			t.Fatalf("loaded from %s, want rotated previous generation", from)
		}
		restored, _, err := RestoreP2(snap)
		if err != nil {
			t.Fatal(err)
		}
		if restored.DB().Root() != srv.DB().Root() {
			t.Fatal("recovered generation is not the pre-crash state")
		}
	})

	t.Run("torn write is caught at load", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.snap")
		if err := writeGen(t, fault.OS, path, srv, store); err != nil {
			t.Fatal(err)
		}
		// The lying disk: the payload write persists half its bytes but
		// reports success, so WriteSnapshotFile completes "cleanly".
		// Writes: 1 magic, 2 length, 3 payload, 4 footer.
		ffs := &fault.FaultyFS{ShortWriteAt: 3}
		if err := writeGen(t, ffs, path, srvNew, storeNew); err != nil {
			t.Fatalf("torn write is silent by design, got %v", err)
		}
		snap, from, err := LoadP2Auto(path)
		if err != nil {
			t.Fatalf("recovery after torn write: %v", err)
		}
		if from != prevGeneration(path) {
			t.Fatalf("loaded from %s, want fallback to previous generation", from)
		}
		restored, _, err := RestoreP2(snap)
		if err != nil {
			t.Fatal(err)
		}
		if restored.DB().Root() != srv.DB().Root() {
			t.Fatal("recovered generation is not the last durable state")
		}
	})

	t.Run("crash before data sync", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.snap")
		if err := writeGen(t, fault.OS, path, srv, store); err != nil {
			t.Fatal(err)
		}
		ffs := &fault.FaultyFS{CrashAtSync: 1}
		if err := writeGen(t, ffs, path, srvNew, storeNew); !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("want simulated crash, got %v", err)
		}
		// The install never happened; the old generation is untouched.
		if _, from, err := LoadP2Auto(path); err != nil || from != path {
			t.Fatalf("old generation must survive: %s %v", from, err)
		}
	})
}
