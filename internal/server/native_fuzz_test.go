package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/vdb"
)

// FuzzSnapshotLoad drives both snapshot loaders with arbitrary bytes.
// The property is totality: a checkpoint file is the one input the
// server reads with no adversary model in front of it — a corrupt or
// hostile file must produce a clean error, never a panic and never a
// silently wrong restore (the checksum footer must fail before gob
// sees a flipped payload byte).
func FuzzSnapshotLoad(f *testing.F) {
	db := vdb.New(0)
	srv := NewP2(db)
	store := cvs.NewStore()
	user := proto2.NewUser(0, db.Root(), 1000)
	op := &cvs.CommitOp{
		Files:  []cvs.CommitFile{{Path: "f", Hash: rcs.HashContent([]byte("v1\n"))}},
		Author: "u0", TimeUnix: 1,
	}
	raw, err := srv.HandleOp(user.Request(op))
	if err != nil {
		f.Fatal(err)
	}
	if _, err := user.HandleResponse(op, raw.(*core.OpResponseII)); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveP2(&buf, srv, store); err != nil {
		f.Fatal(err)
	}
	honest := buf.Bytes()

	f.Add(append([]byte(nil), honest...))
	f.Add(append([]byte(nil), honest[:len(honest)/2]...))
	f.Add(append([]byte(nil), honest[:len(honest)-1]...))
	flipped := append([]byte(nil), honest...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	// A header promising a giant payload: must be rejected or fail on
	// truncation without a giant allocation.
	huge := []byte(snapMagic)
	huge = binary.BigEndian.AppendUint64(huge, maxSnapshotBytes+1)
	f.Add(huge)
	f.Add([]byte(fmt.Sprintf("%s%s", snapMagic, "\x00\x00\x00\x00\x00\x00\x00\x04gobs")))

	f.Fuzz(func(t *testing.T, b []byte) {
		if _, _, err := LoadP2(bytes.NewReader(b)); err == nil {
			// Only a verifiable frame may load; spot-check that what
			// loaded really carries the footer-protected payload.
			if payload, perr := readChecksummed(bytes.NewReader(b)); perr != nil {
				t.Fatalf("LoadP2 accepted input that fails frame verification: %v", perr)
			} else if len(payload) == 0 {
				t.Fatal("LoadP2 accepted an empty payload")
			}
		}
		_, _, _ = LoadP3(bytes.NewReader(b))
		_, _ = DecodeP2Snapshot(bytes.NewReader(b))
	})
}
