package server

import (
	"encoding/gob"
	"fmt"
	"io"

	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/core/proto3"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// P2Snapshot bundles everything a Protocol II deployment needs to
// survive a restart: the authenticated database (with its operation
// counter), the protocol's last-user marker, and the content store.
// Restoring reproduces the exact root digest, so running clients —
// whose registers commit to that root — continue seamlessly.
type P2Snapshot struct {
	DB       *vdb.DBSnapshot
	LastUser sig.UserID
	Store    *cvs.StoreSnapshot
}

// SaveP2 writes a Protocol II server's full state. srv must be an
// honest Protocol II server created by NewP2.
func SaveP2(w io.Writer, srv Server, store *cvs.Store) error {
	p2srv, ok := srv.(*p2)
	if !ok {
		return fmt.Errorf("server: SaveP2 needs an honest Protocol II server, got %v", srv.Protocol())
	}
	storeSnap, err := store.Snapshot()
	if err != nil {
		return err
	}
	// Checkpoint captures (db, lastUser) at one point of the operation
	// order; the snapshot walk runs on the O(1) fork so a live,
	// pipelined server keeps serving while its state is written out.
	dbAt, lastUser := p2srv.inner.Checkpoint()
	snap := &P2Snapshot{
		DB:       dbAt.Snapshot(),
		LastUser: lastUser,
		Store:    storeSnap,
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	return nil
}

// LoadP2 restores a Protocol II server and content store.
func LoadP2(r io.Reader) (Server, *cvs.Store, error) {
	var snap P2Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("server: decode snapshot: %w", err)
	}
	db, err := vdb.RestoreDB(snap.DB)
	if err != nil {
		return nil, nil, err
	}
	store, err := cvs.RestoreStore(snap.Store)
	if err != nil {
		return nil, nil, err
	}
	return &p2{inner: proto2.NewServerAt(db, snap.LastUser)}, store, nil
}

// P3Snapshot bundles a Protocol III deployment's full state: the
// database, the epoch machinery (including stored signed backups), and
// the content store.
type P3Snapshot struct {
	DB    *vdb.DBSnapshot
	State proto3.ServerState
	Store *cvs.StoreSnapshot
}

// SaveP3 writes a Protocol III server's full state.
func SaveP3(w io.Writer, srv Server, store *cvs.Store) error {
	p3srv, ok := srv.(*p3)
	if !ok {
		return fmt.Errorf("server: SaveP3 needs an honest Protocol III server, got %v", srv.Protocol())
	}
	storeSnap, err := store.Snapshot()
	if err != nil {
		return err
	}
	dbAt, state := p3srv.inner.Checkpoint()
	snap := &P3Snapshot{
		DB:    dbAt.Snapshot(),
		State: state,
		Store: storeSnap,
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	return nil
}

// LoadP3 restores a Protocol III server and content store.
func LoadP3(r io.Reader) (Server, *cvs.Store, error) {
	var snap P3Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("server: decode snapshot: %w", err)
	}
	db, err := vdb.RestoreDB(snap.DB)
	if err != nil {
		return nil, nil, err
	}
	store, err := cvs.RestoreStore(snap.Store)
	if err != nil {
		return nil, nil, err
	}
	return &p3{inner: proto3.NewServerFromState(db, snap.State)}, store, nil
}
