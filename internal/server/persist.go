package server

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/core/proto3"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
)

// Snapshots are framed so a loader can tell a good checkpoint from a
// torn or rotted one before trusting a single byte of it:
//
//	magic "TCVSSNAP1\n" | 8-byte big-endian payload length |
//	gob payload | 32-byte digest footer
//
// The footer is the domain-separated hash of the payload. A crash mid
// write leaves a file that fails the length or footer check; recovery
// then falls back to the previous generation instead of silently
// restoring garbage — which, for this system, would not just corrupt
// data but raise deviation alarms on every running client.
const snapMagic = "TCVSSNAP1\n"

// maxSnapshotBytes bounds the declared payload length so a corrupt
// header cannot demand an absurd allocation before the footer check
// gets a chance to reject it.
const maxSnapshotBytes = 1 << 30

// writeChecksummed frames one gob-encoded payload.
func writeChecksummed(w io.Writer, payload []byte) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return fmt.Errorf("server: write snapshot magic: %w", err)
	}
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("server: write snapshot length: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("server: write snapshot payload: %w", err)
	}
	sum := digest.OfBytes(digest.DomainSnapshot, payload)
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("server: write snapshot footer: %w", err)
	}
	return nil
}

// readChecksummed reads one framed payload and verifies its footer.
func readChecksummed(r io.Reader) ([]byte, error) {
	header := make([]byte, len(snapMagic)+8)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("server: snapshot header: %w", err)
	}
	if string(header[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("server: bad snapshot magic %q", header[:len(snapMagic)])
	}
	n := binary.BigEndian.Uint64(header[len(snapMagic):])
	if n > maxSnapshotBytes {
		return nil, fmt.Errorf("server: snapshot declares implausible payload length %d", n)
	}
	// Copy rather than pre-allocate n bytes: a corrupt length field must
	// not buy a giant allocation backed by nothing.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, fmt.Errorf("server: snapshot payload truncated: %w", err)
	}
	payload := buf.Bytes()
	var footer digest.Digest
	if _, err := io.ReadFull(r, footer[:]); err != nil {
		return nil, fmt.Errorf("server: snapshot footer truncated: %w", err)
	}
	if sum := digest.OfBytes(digest.DomainSnapshot, payload); sum != footer {
		return nil, fmt.Errorf("server: snapshot checksum mismatch: footer %s, payload hashes to %s", footer.Short(), sum.Short())
	}
	return payload, nil
}

// P2Snapshot bundles everything a Protocol II deployment needs to
// survive a restart: the authenticated database (with its operation
// counter), the protocol's last-user marker, the content store, and —
// when the transport runs a session table — the cached per-session
// outcomes. Restoring reproduces the exact root digest, so running
// clients — whose registers commit to that root — continue seamlessly,
// and restored session state lets their in-flight retries replay
// instead of double-applying.
type P2Snapshot struct {
	DB       *vdb.DBSnapshot
	LastUser sig.UserID
	Store    *cvs.StoreSnapshot
	Sessions *transport.SessionsSnapshot
	// Metas is the per-shard protocol bookkeeping of a forest server
	// (one entry per shard). Nil on a single-tree server, keeping N=1
	// snapshots gob-identical to pre-forest ones.
	Metas []proto2.MetaState
}

// CheckpointP2 captures a Protocol II server's state. The capture
// itself is O(1) on the live structures (the database walk runs on a
// copy-on-write fork during encoding), so calling it inside a
// transport quiesce window — transport.SessionTable.Freeze — is cheap;
// that is how (db, sessions) become one consistent cut.
func CheckpointP2(srv Server, store *cvs.Store) (*P2Snapshot, error) {
	p2srv, ok := unhook(srv).(*p2)
	if !ok {
		return nil, fmt.Errorf("server: CheckpointP2 needs an honest Protocol II server, got %v", srv.Protocol())
	}
	storeSnap, err := store.Snapshot()
	if err != nil {
		return nil, err
	}
	if p2srv.inner.Forest() {
		dbAt, metas, err := p2srv.inner.CheckpointForest()
		if err != nil {
			return nil, err
		}
		return &P2Snapshot{
			DB:    dbAt.Snapshot(),
			Store: storeSnap,
			Metas: metas,
		}, nil
	}
	dbAt, lastUser := p2srv.inner.Checkpoint()
	return &P2Snapshot{
		DB:       dbAt.Snapshot(),
		LastUser: lastUser,
		Store:    storeSnap,
	}, nil
}

// EncodeP2Snapshot writes snap in the checksummed frame.
func EncodeP2Snapshot(w io.Writer, snap *P2Snapshot) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	return writeChecksummed(w, buf.Bytes())
}

// DecodeP2Snapshot reads and verifies one framed Protocol II snapshot.
func DecodeP2Snapshot(r io.Reader) (*P2Snapshot, error) {
	payload, err := readChecksummed(r)
	if err != nil {
		return nil, err
	}
	var snap P2Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("server: decode snapshot: %w", err)
	}
	return &snap, nil
}

// RestoreP2 rebuilds the server and content store from a decoded
// snapshot. Session state, if present, is the caller's to feed into
// its transport table (transport.SessionTable.RestoreSessions).
func RestoreP2(snap *P2Snapshot) (Server, *cvs.Store, error) {
	db, err := vdb.RestoreDB(snap.DB)
	if err != nil {
		return nil, nil, err
	}
	store, err := cvs.RestoreStore(snap.Store)
	if err != nil {
		return nil, nil, err
	}
	if len(snap.Metas) > 0 {
		inner, err := proto2.NewForestServerAt(db, snap.Metas)
		if err != nil {
			return nil, nil, err
		}
		return &p2{inner: inner}, store, nil
	}
	if db.Shards() > 1 {
		return nil, nil, fmt.Errorf("server: forest snapshot (%d shards) has no per-shard metas", db.Shards())
	}
	return &p2{inner: proto2.NewServerAt(db, snap.LastUser)}, store, nil
}

// SaveP2 writes a Protocol II server's full state (without session
// state — use CheckpointP2 + EncodeP2Snapshot under a transport freeze
// for that). srv must be an honest Protocol II server created by
// NewP2.
func SaveP2(w io.Writer, srv Server, store *cvs.Store) error {
	snap, err := CheckpointP2(srv, store)
	if err != nil {
		return err
	}
	return EncodeP2Snapshot(w, snap)
}

// LoadP2 restores a Protocol II server and content store.
func LoadP2(r io.Reader) (Server, *cvs.Store, error) {
	snap, err := DecodeP2Snapshot(r)
	if err != nil {
		return nil, nil, err
	}
	return RestoreP2(snap)
}

// P3Snapshot bundles a Protocol III deployment's full state: the
// database, the epoch machinery (including stored signed backups), and
// the content store.
type P3Snapshot struct {
	DB    *vdb.DBSnapshot
	State proto3.ServerState
	Store *cvs.StoreSnapshot
}

// SaveP3 writes a Protocol III server's full state.
func SaveP3(w io.Writer, srv Server, store *cvs.Store) error {
	p3srv, ok := unhook(srv).(*p3)
	if !ok {
		return fmt.Errorf("server: SaveP3 needs an honest Protocol III server, got %v", srv.Protocol())
	}
	storeSnap, err := store.Snapshot()
	if err != nil {
		return err
	}
	dbAt, state := p3srv.inner.Checkpoint()
	snap := &P3Snapshot{
		DB:    dbAt.Snapshot(),
		State: state,
		Store: storeSnap,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	return writeChecksummed(w, buf.Bytes())
}

// LoadP3 restores a Protocol III server and content store.
func LoadP3(r io.Reader) (Server, *cvs.Store, error) {
	payload, err := readChecksummed(r)
	if err != nil {
		return nil, nil, err
	}
	var snap P3Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("server: decode snapshot: %w", err)
	}
	db, err := vdb.RestoreDB(snap.DB)
	if err != nil {
		return nil, nil, err
	}
	store, err := cvs.RestoreStore(snap.Store)
	if err != nil {
		return nil, nil, err
	}
	return &p3{inner: proto3.NewServerFromState(db, snap.State)}, store, nil
}
