package server

import (
	"bytes"
	"encoding/gob"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/wal"
)

func journalOp(i int) *core.OpRequest {
	return &core.OpRequest{
		User: sig.UserID(i % 2),
		Op:   &vdb.WriteOp{Puts: []vdb.KV{{Key: string(rune('a' + i)), Val: []byte{byte(i)}}}},
	}
}

// TestOpJournalRecoveryReplay: every op applied through the journaled
// server is re-applied on a fresh server from the journal alone,
// reproducing the exact head.
func TestOpJournalRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenOpJournal(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv := WithOpJournal(NewP2(vdb.New(0)), j)
	for i := 0; i < 10; i++ {
		if _, err := srv.HandleOp(journalOp(i)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := j.Err(); err != nil {
		t.Fatalf("journal degraded: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	fresh := NewP2(vdb.New(0))
	applied, _, err := ReplayOpJournal(dir, fresh, cvs.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if applied != 10 {
		t.Fatalf("replayed %d ops, want 10", applied)
	}
	if got, want := fresh.DB().Root(), srv.DB().Root(); got != want {
		t.Fatalf("replayed root %s != live root %s", got.Short(), want.Short())
	}
}

// TestOpJournalRecoveryFromSnapshot: replay skips everything a
// restored snapshot already covers and re-applies only the tail.
func TestOpJournalRecoveryFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenOpJournal(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv := WithOpJournal(NewP2(vdb.New(0)), j)
	for i := 0; i < 10; i++ {
		if _, err := srv.HandleOp(journalOp(i)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A "restored snapshot" that saw the first 6 ops.
	restored := NewP2(vdb.New(0))
	for i := 0; i < 6; i++ {
		if _, err := restored.HandleOp(journalOp(i)); err != nil {
			t.Fatalf("snapshot op %d: %v", i, err)
		}
	}
	applied, _, err := ReplayOpJournal(dir, restored, cvs.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if applied != 4 {
		t.Fatalf("replayed %d ops, want 4", applied)
	}
	if got, want := restored.DB().Root(), srv.DB().Root(); got != want {
		t.Fatalf("recovered root %s != live root %s", got.Short(), want.Short())
	}
}

// TestOpJournalRecoveryReplaysPushes: content pushes recorded in the
// journal are re-pushed into the store on replay — an acked commit's
// blob must survive the same crash its authenticated record does —
// and replaying a push the restored snapshot already holds is a no-op
// (the blob store is content-addressed, the archive only extends in
// order).
func TestOpJournalRecoveryReplaysPushes(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenOpJournal(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv := WithOpJournal(NewP2(vdb.New(0)), j)
	live := cvs.NewStore()
	push := func(path string, rev uint64, content string) {
		if err := live.Push(path, rev, []byte(content)); err != nil {
			t.Fatalf("push %s@%d: %v", path, rev, err)
		}
		j.RecordPush(&core.PushContentRequest{Path: path, Rev: rev, Content: []byte(content)}, srv.DB().Ctr())
	}
	push("a.txt", 1, "one")
	if _, err := srv.HandleOp(journalOp(0)); err != nil {
		t.Fatal(err)
	}
	push("a.txt", 2, "two")
	push("b.txt", 1, "bee")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A "restored snapshot" of the store that already saw a.txt@1.
	store := cvs.NewStore()
	if err := store.Push("a.txt", 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	fresh := NewP2(vdb.New(0))
	applied, pushes, err := ReplayOpJournal(dir, fresh, store)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 || pushes != 3 {
		t.Fatalf("replayed %d ops / %d pushes, want 1 / 3", applied, pushes)
	}
	for _, want := range []struct {
		path    string
		rev     uint64
		content string
	}{{"a.txt", 1, "one"}, {"a.txt", 2, "two"}, {"b.txt", 1, "bee"}} {
		got, err := store.FetchRev(want.path, want.rev)
		if err != nil {
			t.Fatalf("after replay, fetch %s@%d: %v", want.path, want.rev, err)
		}
		if string(got) != want.content {
			t.Fatalf("after replay, %s@%d = %q, want %q", want.path, want.rev, got, want.content)
		}
	}
}

// TestOpJournalRecoveryStopsAtGap: a lost frame severs the replayable
// prefix; nothing past the gap may be applied (it would fabricate a
// history whose intermediate op never happened).
func TestOpJournalRecoveryStopsAtGap(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []uint64{1, 2, 4} { // 3 is missing
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&journalEntry{G: g, Req: journalOp(int(g - 1))}); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(0, buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := NewP2(vdb.New(0))
	applied, _, err := ReplayOpJournal(dir, fresh, cvs.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("replayed %d ops, want 2 (stop at the gap)", applied)
	}
	if ctr := fresh.DB().Ctr(); ctr != 2 {
		t.Fatalf("head ctr %d, want 2", ctr)
	}
}

// TestOpJournalRecoveryForest: journal replay reproduces a sharded
// (Merkle forest) head, global counters included.
func TestOpJournalRecoveryForest(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	j, err := OpenOpJournal(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv := WithOpJournal(NewP2(vdb.NewSharded(0, shards)), j)
	for i := 0; i < 10; i++ {
		if _, err := srv.HandleOp(journalOp(i)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := NewP2(vdb.NewSharded(0, shards))
	applied, _, err := ReplayOpJournal(dir, fresh, cvs.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if applied != 10 {
		t.Fatalf("replayed %d ops, want 10", applied)
	}
	if got, want := fresh.DB().Root(), srv.DB().Root(); got != want {
		t.Fatalf("replayed forest root %s != live root %s", got.Short(), want.Short())
	}
	if got, want := fresh.DB().Ctr(), srv.DB().Ctr(); got != want {
		t.Fatalf("replayed gctr %d != live gctr %d", got, want)
	}
}
