// Package server unifies the three protocol servers behind one
// interface so that the adversary wrappers (internal/adversary), the
// round simulator (internal/sim), and the TCP server binary can treat
// them uniformly.
package server

import (
	"errors"
	"fmt"

	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto1"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/core/proto3"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/vdb"
)

// Protocol identifies which of the paper's protocols a server speaks.
type Protocol int

const (
	// P1 is Protocol I (signed states, 3 messages/op, sync every k ops).
	P1 Protocol = iota + 1
	// P2 is Protocol II (XOR registers, 2 messages/op, sync every k ops).
	P2
	// P3 is Protocol III (epochs, no external communication).
	P3
)

func (p Protocol) String() string {
	switch p {
	case P1:
		return "protocol-I"
	case P2:
		return "protocol-II"
	case P3:
		return "protocol-III"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// ParseProtocol converts a CLI flag value ("1", "2", "3", "I", ...).
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "1", "I", "i", "protocol-I":
		return P1, nil
	case "2", "II", "ii", "protocol-II":
		return P2, nil
	case "3", "III", "iii", "protocol-III":
		return P3, nil
	}
	return 0, fmt.Errorf("server: unknown protocol %q", s)
}

// ErrUnsupported is returned for messages a protocol does not use
// (e.g. acks under Protocol II).
var ErrUnsupported = errors.New("server: message not supported by this protocol")

// Server is the protocol-agnostic server surface. HandleOp returns
// *core.OpResponseI under Protocol I and *core.OpResponseII under
// Protocols II/III.
//
// Implementations are safe for concurrent use: the honest servers
// pipeline HandleOp (narrow ordered section, post-lock VO/encoding —
// see DESIGN.md "Concurrency model"), so transports may invoke them
// from many connections at once.
type Server interface {
	Protocol() Protocol
	HandleOp(req *core.OpRequest) (any, error)
	HandleAck(ack *core.AckRequest) error
	HandleGetBackups(req *core.GetBackupsRequest) (*core.BackupsResponse, error)
	AdvanceEpoch()
	Epoch() uint64
	DB() *vdb.DB
	Fork() Server
}

// NewP1 wraps a Protocol I server.
func NewP1(db *vdb.DB, init proto1.InitState) Server {
	return &p1{inner: proto1.NewServer(db, init)}
}

// NewP2 wraps a Protocol II server.
func NewP2(db *vdb.DB) Server { return &p2{inner: proto2.NewServer(db)} }

// NewP3 wraps a Protocol III server.
func NewP3(db *vdb.DB) Server { return &p3{inner: proto3.NewServer(db)} }

// WithOpHook decorates a server so that after each successfully
// applied operation, after is invoked with the database head. This is
// how the witness publisher observes commit cadence without this
// package importing it (witness imports server for checkpoints).
//
// Under the pipelined hot path the head read here may already include
// a later concurrent op; that is fine for commitment purposes — Head
// reads the (ctr, root) pair atomically, so whatever pair the hook
// sees is a real head of the history.
func WithOpHook(s Server, after func(ctr uint64, root digest.Digest)) Server {
	return &hooked{Server: s, after: after}
}

type hooked struct {
	Server
	after func(uint64, digest.Digest)
}

func (h *hooked) HandleOp(req *core.OpRequest) (any, error) {
	//lint:ignore verifyflow the server applies client ops to its own UNtrusted store by design; integrity is enforced client-side by VO verification against pinned registers (AUDIT.md "server trusted with nothing")
	resp, err := h.Server.HandleOp(req)
	if err == nil {
		h.after(h.Server.DB().Head())
	}
	return resp, err
}

// Fork keeps the hook on the fork: a forked (malicious) server that
// keeps committing is exactly the equivocation the witnesses convict.
func (h *hooked) Fork() Server { return &hooked{Server: h.Server.Fork(), after: h.after} }

// unhook strips op-hook and op-journal decoration for code
// (checkpointing) that needs the concrete protocol server underneath.
func unhook(s Server) Server {
	for {
		switch h := s.(type) {
		case *hooked:
			s = h.Server
		case *journaled:
			s = h.Server
		default:
			return s
		}
	}
}

type p1 struct{ inner *proto1.Server }

func (s *p1) Protocol() Protocol { return P1 }
func (s *p1) HandleOp(req *core.OpRequest) (any, error) {
	//lint:ignore verifyflow the server applies client ops to its own UNtrusted store by design; clients verify every transition via the VO
	return s.inner.HandleOp(req)
}
func (s *p1) HandleAck(ack *core.AckRequest) error { return s.inner.HandleAck(ack) }
func (s *p1) HandleGetBackups(*core.GetBackupsRequest) (*core.BackupsResponse, error) {
	return nil, ErrUnsupported
}
func (s *p1) AdvanceEpoch() {}
func (s *p1) Epoch() uint64 { return 0 }
func (s *p1) DB() *vdb.DB   { return s.inner.DB() }
func (s *p1) Fork() Server  { return &p1{inner: s.inner.Fork()} }

type p2 struct{ inner *proto2.Server }

func (s *p2) Protocol() Protocol { return P2 }
func (s *p2) HandleOp(req *core.OpRequest) (any, error) {
	// Cross-shard transactions take the two-phase forest path; on a
	// single-tree database a CrossOp is just an ordinary (composite)
	// operation and stays on the plain path.
	if _, ok := req.Op.(*vdb.CrossOp); ok && s.inner.Forest() {
		//lint:ignore verifyflow the server applies client ops to its own UNtrusted store by design; clients verify every transition via the VO
		return s.inner.HandleCross(req)
	}
	//lint:ignore verifyflow the server applies client ops to its own UNtrusted store by design; clients verify every transition via the VO
	return s.inner.HandleOp(req)
}
func (s *p2) HandleAck(*core.AckRequest) error { return ErrUnsupported }
func (s *p2) HandleGetBackups(*core.GetBackupsRequest) (*core.BackupsResponse, error) {
	return nil, ErrUnsupported
}
func (s *p2) AdvanceEpoch() {}
func (s *p2) Epoch() uint64 { return 0 }
func (s *p2) DB() *vdb.DB   { return s.inner.DB() }
func (s *p2) Fork() Server  { return &p2{inner: s.inner.Fork()} }

type p3 struct{ inner *proto3.Server }

func (s *p3) Protocol() Protocol { return P3 }
func (s *p3) HandleOp(req *core.OpRequest) (any, error) {
	//lint:ignore verifyflow the server applies client ops to its own UNtrusted store by design; clients verify every transition via the VO
	return s.inner.HandleOp(req)
}
func (s *p3) HandleAck(*core.AckRequest) error { return ErrUnsupported }
func (s *p3) HandleGetBackups(req *core.GetBackupsRequest) (*core.BackupsResponse, error) {
	return s.inner.HandleGetBackups(req), nil
}
func (s *p3) AdvanceEpoch() { s.inner.AdvanceEpoch() }
func (s *p3) Epoch() uint64 { return s.inner.Epoch() }
func (s *p3) DB() *vdb.DB   { return s.inner.DB() }
func (s *p3) Fork() Server  { return &p3{inner: s.inner.Fork()} }
