package server

import (
	"bytes"
	"fmt"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto3"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// TestP3SaveLoadRestartContinuity: run two epochs, snapshot, restart,
// and confirm (a) root/ctr/epoch survive, (b) the stored epoch backups
// survive, and (c) the same users keep operating and the rotating
// checker audits epoch 0 successfully against the restored server.
func TestP3SaveLoadRestartContinuity(t *testing.T) {
	signers, ring, err := sig.DeterministicSigners(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	db := vdb.New(0)
	srv := NewP3(db)
	store := cvs.NewStore()
	users := []*proto3.User{
		proto3.NewUser(signers[0], ring, db.Root()),
		proto3.NewUser(signers[1], ring, db.Root()),
	}

	do := func(s Server, u int, op vdb.Op) (proto3.Outcome, error) {
		raw, err := s.HandleOp(users[u].Request(op))
		if err != nil {
			return proto3.Outcome{}, err
		}
		return users[u].HandleResponse(op, raw.(*core.OpResponseII))
	}
	commit := func(s Server, u int, path, content string, rev uint64) {
		t.Helper()
		op := &cvs.CommitOp{
			Files:  []cvs.CommitFile{{Path: path, Hash: rcs.HashContent([]byte(content))}},
			Author: fmt.Sprintf("u%d", u), TimeUnix: 1,
		}
		if _, err := do(s, u, op); err != nil {
			t.Fatal(err)
		}
		if err := store.Push(path, rev, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}

	// Epoch 0: two ops per user; epoch 1: same (uploads epoch-0
	// backups).
	rev := uint64(0)
	for epoch := 0; epoch < 2; epoch++ {
		for u := 0; u < 2; u++ {
			for j := 0; j < 2; j++ {
				rev++
				commit(srv, u, "f", fmt.Sprintf("e%d-u%d-%d\n", epoch, u, j), rev)
			}
		}
		srv.AdvanceEpoch()
	}

	var buf bytes.Buffer
	if err := SaveP3(&buf, srv, store); err != nil {
		t.Fatal(err)
	}
	srv2, store2, err := LoadP3(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.DB().Root() != srv.DB().Root() || srv2.DB().Ctr() != srv.DB().Ctr() {
		t.Fatal("restored db state differs")
	}
	if srv2.Epoch() != 2 {
		t.Fatalf("restored epoch %d, want 2", srv2.Epoch())
	}
	bk, err := srv2.HandleGetBackups(&core.GetBackupsRequest{Epoch: 0})
	if err != nil || len(bk.Backups) != 2 {
		t.Fatalf("restored epoch-0 backups: %+v %v", bk, err)
	}
	store = store2

	// Epoch 2 against the restored server: the checker for epoch 0
	// (user 0) must run its audit cleanly.
	checked := false
	for u := 0; u < 2; u++ {
		for j := 0; j < 2; j++ {
			rev++
			op := &cvs.CommitOp{
				Files:  []cvs.CommitFile{{Path: "f", Hash: rcs.HashContent([]byte(fmt.Sprintf("e2-u%d-%d\n", u, j)))}},
				Author: "x", TimeUnix: 2,
			}
			out, err := do(srv2, u, op)
			if err != nil {
				t.Fatalf("post-restart op: %v", err)
			}
			if out.CheckEpoch != nil {
				e := *out.CheckEpoch
				var prev *core.BackupsResponse
				if e > 0 {
					prev, _ = srv2.HandleGetBackups(&core.GetBackupsRequest{Epoch: e - 1})
				}
				cur, _ := srv2.HandleGetBackups(&core.GetBackupsRequest{Epoch: e})
				if err := users[u].CompleteEpochCheck(e, prev, cur); err != nil {
					t.Fatalf("epoch check after restart: %v", err)
				}
				checked = true
			}
		}
	}
	if !checked {
		t.Fatal("no epoch audit ran after restart")
	}
}
