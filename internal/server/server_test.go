package server

import (
	"errors"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto1"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

func TestParseProtocol(t *testing.T) {
	for in, want := range map[string]Protocol{
		"1": P1, "I": P1, "i": P1, "protocol-I": P1,
		"2": P2, "II": P2, "3": P3, "iii": P3,
	} {
		got, err := ParseProtocol(in)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseProtocol("4"); err == nil {
		t.Error("unknown protocol must error")
	}
}

func TestProtocolString(t *testing.T) {
	if P1.String() != "protocol-I" || P2.String() != "protocol-II" || P3.String() != "protocol-III" {
		t.Error("protocol names")
	}
	if Protocol(9).String() != "protocol(9)" {
		t.Error("unknown protocol name")
	}
}

func TestAdapterCapabilities(t *testing.T) {
	signers, _, err := sig.DeterministicSigners(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	db1 := vdb.New(0)
	p1 := NewP1(db1, proto1.Initialize(signers[0], db1.Root()))
	p2 := NewP2(vdb.New(0))
	p3 := NewP3(vdb.New(0))

	// Protocol-specific messages are rejected where unsupported.
	if err := p2.HandleAck(&core.AckRequest{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("P2 ack: %v", err)
	}
	if err := p3.HandleAck(&core.AckRequest{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("P3 ack: %v", err)
	}
	if _, err := p1.HandleGetBackups(&core.GetBackupsRequest{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("P1 backups: %v", err)
	}
	if _, err := p2.HandleGetBackups(&core.GetBackupsRequest{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("P2 backups: %v", err)
	}
	if resp, err := p3.HandleGetBackups(&core.GetBackupsRequest{Epoch: 0}); err != nil || resp == nil {
		t.Errorf("P3 backups: %v %v", resp, err)
	}

	// Epochs only advance under P3.
	p1.AdvanceEpoch()
	p2.AdvanceEpoch()
	p3.AdvanceEpoch()
	if p1.Epoch() != 0 || p2.Epoch() != 0 || p3.Epoch() != 1 {
		t.Errorf("epochs: %d %d %d", p1.Epoch(), p2.Epoch(), p3.Epoch())
	}

	// Protocol identities and response types.
	if p1.Protocol() != P1 || p2.Protocol() != P2 || p3.Protocol() != P3 {
		t.Error("protocol identities")
	}
	op := &core.OpRequest{User: 0, Op: &vdb.NopOp{}}
	r1, err := p1.HandleOp(op)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r1.(*core.OpResponseI); !ok {
		t.Errorf("P1 response type %T", r1)
	}
	r2, err := p2.HandleOp(op)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.(*core.OpResponseII); !ok {
		t.Errorf("P2 response type %T", r2)
	}
	r3, err := p3.HandleOp(op)
	if err != nil {
		t.Fatal(err)
	}
	if rr, ok := r3.(*core.OpResponseII); !ok || rr.Epoch != 1 {
		t.Errorf("P3 response: %T %+v", r3, r3)
	}
}

func TestForkReturnsSameProtocol(t *testing.T) {
	for _, s := range []Server{NewP2(vdb.New(0)), NewP3(vdb.New(0))} {
		f := s.Fork()
		if f.Protocol() != s.Protocol() {
			t.Errorf("fork changed protocol: %v -> %v", s.Protocol(), f.Protocol())
		}
		if f.DB() == s.DB() {
			t.Error("fork must have its own DB wrapper")
		}
	}
}
