package server

import (
	"bytes"
	"fmt"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/vdb"
)

// TestP2SaveLoadRestartContinuity is the scenario that matters: a
// client verifies operations, the server restarts from a snapshot, and
// the SAME client (whose registers commit to the pre-restart history)
// keeps operating and passes the synchronization check.
func TestP2SaveLoadRestartContinuity(t *testing.T) {
	db := vdb.New(0)
	srv := NewP2(db)
	store := cvs.NewStore()
	user := proto2.NewUser(0, db.Root(), 1000)
	doer := func(s Server, op vdb.Op) error {
		raw, err := s.HandleOp(user.Request(op))
		if err != nil {
			return err
		}
		_, err = user.HandleResponse(op, raw.(*core.OpResponseII))
		return err
	}

	// Some verified history plus content.
	commit := func(s Server, path, content string, rev uint64) error {
		op := &cvs.CommitOp{
			Files:  []cvs.CommitFile{{Path: path, Hash: rcs.HashContent([]byte(content))}},
			Author: "u0", TimeUnix: 1,
		}
		if err := doer(s, op); err != nil {
			return err
		}
		return store.Push(path, rev, []byte(content))
	}
	for i := 1; i <= 5; i++ {
		if err := commit(srv, "f", fmt.Sprintf("v%d\n", i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := SaveP2(&buf, srv, store); err != nil {
		t.Fatal(err)
	}

	// "Restart": brand-new process state from the snapshot.
	srv2, store2, err := LoadP2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.DB().Root() != srv.DB().Root() {
		t.Fatal("restored root digest differs")
	}
	if srv2.DB().Ctr() != srv.DB().Ctr() {
		t.Fatal("restored ctr differs")
	}
	// Historical content survives, delta chains intact.
	for i := 1; i <= 5; i++ {
		got, err := store2.Fetch("f", uint64(i), rcs.HashContent([]byte(fmt.Sprintf("v%d\n", i))))
		if err != nil || string(got) != fmt.Sprintf("v%d\n", i) {
			t.Fatalf("restored content f@%d: %q %v", i, got, err)
		}
		if got, err := store2.FetchRev("f", uint64(i)); err != nil || string(got) != fmt.Sprintf("v%d\n", i) {
			t.Fatalf("restored archive f@%d: %q %v", i, got, err)
		}
	}

	// The ORIGINAL client continues against the restored server: its
	// registers must chain (same tagged states) and sync must pass.
	store = store2
	if err := commit(srv2, "f", "v6\n", 6); err != nil {
		t.Fatalf("post-restart op: %v", err)
	}
	if err := user.CompleteSync([]core.SyncReportII{user.SyncReport()}); err != nil {
		t.Fatalf("sync after restart: %v", err)
	}
}

func TestSaveP2RejectsWrongProtocol(t *testing.T) {
	db := vdb.New(0)
	if err := SaveP2(&bytes.Buffer{}, NewP3(db), cvs.NewStore()); err == nil {
		t.Fatal("SaveP2 must reject non-P2 servers")
	}
}

func TestLoadP2RejectsGarbage(t *testing.T) {
	if _, _, err := LoadP2(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("LoadP2 must reject garbage")
	}
}
