package server

import (
	"errors"
	"fmt"
	"io"
	"os"

	"trustedcvs/internal/fault"
)

// ErrNoSnapshot reports that no snapshot generation exists on disk at
// all — a first boot, as opposed to a boot over corrupt checkpoints.
var ErrNoSnapshot = errors.New("server: no snapshot on disk")

// prevGeneration names the rotated previous checkpoint for path.
func prevGeneration(path string) string { return path + ".1" }

// WriteSnapshotFile atomically replaces path with a snapshot produced
// by write, keeping the displaced file as the previous generation at
// path+".1". The sequence is the full crash-safe litany: write to a
// temp file, fsync it, close it, rotate, rename into place, fsync the
// directory. A crash at any step leaves either the new snapshot, the
// old one, or the old one under its rotated name — never a half
// checkpoint that a restart would trust (and the checksummed frame
// catches torn writes the rename dance cannot, e.g. a lying disk).
//
// fs is the filesystem to write through; pass fault.OS in production
// and a fault.FaultyFS in crash tests. nil selects fault.OS.
func WriteSnapshotFile(fs fault.FS, path string, write func(io.Writer) error) error {
	if fs == nil {
		fs = fault.OS
	}
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("server: create %s: %w", tmp, err)
	}
	if err := write(f); err != nil {
		f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("server: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("server: close %s: %w", tmp, err)
	}
	ok, err := fs.Exists(path)
	if err != nil {
		return fmt.Errorf("server: stat %s: %w", path, err)
	}
	if ok {
		if err := fs.Rename(path, prevGeneration(path)); err != nil {
			return fmt.Errorf("server: rotate %s: %w", path, err)
		}
	}
	if err := fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("server: install %s: %w", path, err)
	}
	if err := fs.SyncDir(fault.Dir(path)); err != nil {
		return fmt.Errorf("server: sync dir of %s: %w", path, err)
	}
	return nil
}

// LoadP2Auto loads the newest verifiable Protocol II snapshot
// generation: path first, then path+".1" if the current file is
// missing (crash between rotate and install) or fails verification
// (torn or rotted write). It returns the snapshot and the file it came
// from; the error wraps ErrNoSnapshot when no generation exists at
// all, and otherwise carries per-generation diagnostics.
func LoadP2Auto(path string) (*P2Snapshot, string, error) {
	var errs []error
	missing := 0
	for _, cand := range []string{path, prevGeneration(path)} {
		f, err := os.Open(cand)
		if err != nil {
			if os.IsNotExist(err) {
				missing++
			}
			errs = append(errs, err)
			continue
		}
		snap, derr := DecodeP2Snapshot(f)
		f.Close()
		if derr == nil {
			return snap, cand, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", cand, derr))
	}
	if missing == 2 {
		return nil, "", fmt.Errorf("%w: %s", ErrNoSnapshot, path)
	}
	return nil, "", fmt.Errorf("server: no loadable snapshot generation: %w", errors.Join(errs...))
}
