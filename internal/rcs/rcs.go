// Package rcs implements the server-side revision storage substrate of
// a CVS-like system: per-file revision chains stored RCS-style (head
// revision in full, older revisions as reverse deltas) plus a
// content-addressed blob store.
//
// Nothing in this package is trusted. The authenticated layer
// (internal/vdb + internal/cvs) commits to content *hashes*; rcs merely
// has to produce bytes that hash correctly, and a client always
// re-hashes what it receives. A malicious server that tampers with rcs
// state can only cause detectable failures.
package rcs

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"trustedcvs/internal/diff"
	"trustedcvs/internal/digest"
)

// ErrNoRevision is returned for out-of-range revision numbers or files
// with no commits.
var ErrNoRevision = errors.New("rcs: no such revision")

// ErrUnknownFile is returned by Archive lookups for unknown paths.
var ErrUnknownFile = errors.New("rcs: unknown file")

// ErrCorrupt is returned when stored content does not match its
// recorded content hash — on an honest server this indicates storage
// corruption; under an adversary it is tampering.
var ErrCorrupt = errors.New("rcs: content does not match recorded hash")

// Revision is the metadata for one committed revision of one file.
// Numbers start at 1 (CVS's "1.1" maps to 1, "1.2" to 2, ...).
type Revision struct {
	Number int
	Author string
	Time   time.Time
	Log    string
	Hash   digest.Digest // content hash, digest.DomainBlob
}

// HashContent computes the content hash recorded in Revision.Hash and
// verified by clients after every checkout.
func HashContent(content []byte) digest.Digest {
	return digest.OfBytes(digest.DomainBlob, content)
}

// CheckContent verifies fetched blob bytes against the authenticated
// hash the client pinned for that revision. Every transfer path that
// hands content to a caller must run fetched bytes through this check
// (tcvs-lint's verifyflow pass treats it as the sanitizer for blob
// content).
func CheckContent(content []byte, want digest.Digest) error {
	if HashContent(content) != want {
		return fmt.Errorf("rcs: content does not match authenticated hash %s", want.Short())
	}
	return nil
}

// File is the revision chain for a single file: full head text plus
// reverse deltas back to revision 1.
type File struct {
	path   string
	head   []byte
	revs   []Revision    // revs[i] is revision i+1
	deltas []*diff.Patch // deltas[i] transforms revision i+2's text into revision i+1's
}

// NewFile creates an empty revision chain for path.
func NewFile(path string) *File { return &File{path: path} }

// Path returns the file's repository path.
func (f *File) Path() string { return f.path }

// Revisions returns the number of committed revisions.
func (f *File) Revisions() int { return len(f.revs) }

// Commit appends a new revision with the given content and metadata,
// returning its Revision record. Content is copied.
func (f *File) Commit(content []byte, author, log string, when time.Time) Revision {
	content = append([]byte(nil), content...)
	rev := Revision{
		Number: len(f.revs) + 1,
		Author: author,
		Time:   when,
		Log:    log,
		Hash:   HashContent(content),
	}
	if len(f.revs) > 0 {
		// Reverse delta: new text -> previous head text.
		f.deltas = append(f.deltas, diff.Strings(string(content), string(f.head)))
	}
	f.head = content
	f.revs = append(f.revs, rev)
	return rev
}

// Head returns the latest revision's content and metadata.
func (f *File) Head() ([]byte, Revision, error) {
	if len(f.revs) == 0 {
		return nil, Revision{}, fmt.Errorf("%w: %s has no commits", ErrNoRevision, f.path)
	}
	return append([]byte(nil), f.head...), f.revs[len(f.revs)-1], nil
}

// At reconstructs the content of revision n by walking reverse deltas
// back from the head, verifying the result against the recorded hash.
func (f *File) At(n int) ([]byte, Revision, error) {
	if n < 1 || n > len(f.revs) {
		return nil, Revision{}, fmt.Errorf("%w: %s revision %d (have 1..%d)", ErrNoRevision, f.path, n, len(f.revs))
	}
	text := string(f.head)
	for i := len(f.revs) - 2; i >= n-1; i-- {
		var err error
		text, err = f.deltas[i].ApplyStrings(text)
		if err != nil {
			return nil, Revision{}, fmt.Errorf("rcs: %s: reverse delta to revision %d: %w", f.path, i+1, err)
		}
	}
	rev := f.revs[n-1]
	if HashContent([]byte(text)) != rev.Hash {
		return nil, Revision{}, fmt.Errorf("%w: %s revision %d", ErrCorrupt, f.path, n)
	}
	return []byte(text), rev, nil
}

// Log returns the revision metadata, newest first (like `cvs log`).
func (f *File) Log() []Revision {
	out := make([]Revision, len(f.revs))
	for i, r := range f.revs {
		out[len(f.revs)-1-i] = r
	}
	return out
}

// Archive is a collection of Files keyed by path — the storage half of
// a CVS server.
type Archive struct {
	files map[string]*File
}

// NewArchive creates an empty archive.
func NewArchive() *Archive { return &Archive{files: make(map[string]*File)} }

// File returns the revision chain for path, creating it when create is
// set.
func (a *Archive) File(path string, create bool) (*File, error) {
	if f, ok := a.files[path]; ok {
		return f, nil
	}
	if !create {
		return nil, fmt.Errorf("%w: %s", ErrUnknownFile, path)
	}
	f := NewFile(path)
	a.files[path] = f
	return f, nil
}

// Paths returns all file paths in sorted order.
func (a *Archive) Paths() []string {
	out := make([]string, 0, len(a.files))
	for p := range a.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of files in the archive.
func (a *Archive) Len() int { return len(a.files) }

// Fork returns a deep-enough copy of the archive for the adversary
// package: revision chains are append-only, so forked Files share
// existing revisions but diverge on future commits.
func (a *Archive) Fork() *Archive {
	na := NewArchive()
	for p, f := range a.files {
		nf := &File{
			path:   f.path,
			head:   f.head, // head is replaced wholesale on commit; safe to share
			revs:   append([]Revision(nil), f.revs...),
			deltas: append([]*diff.Patch(nil), f.deltas...),
		}
		na.files[p] = nf
	}
	return na
}

// BlobStore is a content-addressed store: blobs are keyed by their
// digest, so a reader can always verify what it gets.
type BlobStore struct {
	blobs map[digest.Digest][]byte
}

// NewBlobStore creates an empty blob store.
func NewBlobStore() *BlobStore {
	return &BlobStore{blobs: make(map[digest.Digest][]byte)}
}

// Put stores content and returns its digest. Content is copied.
func (s *BlobStore) Put(content []byte) digest.Digest {
	d := HashContent(content)
	if _, ok := s.blobs[d]; !ok {
		s.blobs[d] = append([]byte(nil), content...)
	}
	return d
}

// Get returns the blob for d, verifying it against its digest.
func (s *BlobStore) Get(d digest.Digest) ([]byte, error) {
	b, ok := s.blobs[d]
	if !ok {
		return nil, fmt.Errorf("rcs: blob %s not found", d.Short())
	}
	if HashContent(b) != d {
		return nil, fmt.Errorf("%w: blob %s", ErrCorrupt, d.Short())
	}
	return append([]byte(nil), b...), nil
}

// Len returns the number of stored blobs.
func (s *BlobStore) Len() int { return len(s.blobs) }

// Digests returns every stored blob's digest (unordered).
func (s *BlobStore) Digests() []digest.Digest {
	out := make([]digest.Digest, 0, len(s.blobs))
	for d := range s.blobs {
		out = append(out, d)
	}
	return out
}

// Clone returns an independent store sharing the (immutable) blob
// contents but not the index, so clones can diverge safely.
func (s *BlobStore) Clone() *BlobStore {
	ns := NewBlobStore()
	for d, b := range s.blobs {
		ns.blobs[d] = b
	}
	return ns
}
