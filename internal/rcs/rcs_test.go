package rcs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2006, 4, 3, 0, 0, 0, 0, time.UTC) // ICDE 2006 week

func TestEmptyFile(t *testing.T) {
	f := NewFile("a.txt")
	if f.Revisions() != 0 {
		t.Fatal("new file should have no revisions")
	}
	if _, _, err := f.Head(); !errors.Is(err, ErrNoRevision) {
		t.Fatalf("Head on empty file: %v", err)
	}
	if _, _, err := f.At(1); !errors.Is(err, ErrNoRevision) {
		t.Fatalf("At(1) on empty file: %v", err)
	}
}

func TestCommitAndHead(t *testing.T) {
	f := NewFile("a.txt")
	rev := f.Commit([]byte("v1\n"), "alice", "initial", t0)
	if rev.Number != 1 || rev.Author != "alice" || rev.Log != "initial" {
		t.Fatalf("bad revision record: %+v", rev)
	}
	content, head, err := f.Head()
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != "v1\n" || head.Number != 1 {
		t.Fatalf("Head = %q rev %d", content, head.Number)
	}
	if HashContent([]byte("v1\n")) != rev.Hash {
		t.Fatal("revision hash does not bind content")
	}
}

func TestReverseDeltaReconstruction(t *testing.T) {
	f := NewFile("main.go")
	versions := []string{
		"package main\n\nfunc main() {}\n",
		"package main\n\nimport \"fmt\"\n\nfunc main() {\n\tfmt.Println(\"hi\")\n}\n",
		"package main\n\nimport \"fmt\"\n\nfunc main() {\n\tfmt.Println(\"hello\")\n}\n",
		"package main\n\nfunc main() {\n\tprintln(\"hello\")\n}\n",
	}
	for i, v := range versions {
		f.Commit([]byte(v), "bob", fmt.Sprintf("rev %d", i+1), t0.Add(time.Duration(i)*time.Hour))
	}
	for i, want := range versions {
		got, rev, err := f.At(i + 1)
		if err != nil {
			t.Fatalf("At(%d): %v", i+1, err)
		}
		if string(got) != want {
			t.Fatalf("At(%d) = %q, want %q", i+1, got, want)
		}
		if rev.Number != i+1 {
			t.Fatalf("At(%d) returned rev %d", i+1, rev.Number)
		}
	}
}

func TestAtOutOfRange(t *testing.T) {
	f := NewFile("a")
	f.Commit([]byte("x\n"), "a", "", t0)
	for _, n := range []int{0, -1, 2, 100} {
		if _, _, err := f.At(n); !errors.Is(err, ErrNoRevision) {
			t.Errorf("At(%d): %v", n, err)
		}
	}
}

func TestLogNewestFirst(t *testing.T) {
	f := NewFile("a")
	for i := 1; i <= 3; i++ {
		f.Commit([]byte(fmt.Sprintf("v%d\n", i)), "u", fmt.Sprintf("log%d", i), t0)
	}
	log := f.Log()
	if len(log) != 3 {
		t.Fatalf("Log() has %d entries", len(log))
	}
	for i, r := range log {
		if r.Number != 3-i {
			t.Fatalf("Log order wrong: %v", log)
		}
	}
}

func TestArchive(t *testing.T) {
	a := NewArchive()
	if _, err := a.File("missing", false); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("lookup of missing file: %v", err)
	}
	f, err := a.File("x.txt", true)
	if err != nil {
		t.Fatal(err)
	}
	f.Commit([]byte("hello\n"), "u", "", t0)
	again, err := a.File("x.txt", false)
	if err != nil || again != f {
		t.Fatal("archive did not return the same File")
	}
	_, _ = a.File("b.txt", true)
	_, _ = a.File("a.txt", true)
	paths := a.Paths()
	if len(paths) != 3 || paths[0] != "a.txt" || paths[2] != "x.txt" {
		t.Fatalf("Paths() = %v", paths)
	}
	if a.Len() != 3 {
		t.Fatalf("Len() = %d", a.Len())
	}
}

func TestArchiveForkDiverges(t *testing.T) {
	a := NewArchive()
	f, _ := a.File("f", true)
	f.Commit([]byte("shared\n"), "u", "", t0)

	b := a.Fork()
	bf, err := b.File("f", false)
	if err != nil {
		t.Fatal(err)
	}
	bf.Commit([]byte("fork-only\n"), "u", "", t0)

	// The original must not see the fork's commit.
	if f.Revisions() != 1 {
		t.Fatalf("original gained revisions from fork: %d", f.Revisions())
	}
	if bf.Revisions() != 2 {
		t.Fatalf("fork lost its commit: %d", bf.Revisions())
	}
	orig, _, err := f.Head()
	if err != nil || string(orig) != "shared\n" {
		t.Fatalf("original head changed: %q %v", orig, err)
	}
	// And historical revisions remain intact in both.
	old, _, err := bf.At(1)
	if err != nil || string(old) != "shared\n" {
		t.Fatalf("fork lost shared history: %q %v", old, err)
	}
}

func TestBlobStore(t *testing.T) {
	s := NewBlobStore()
	d := s.Put([]byte("content"))
	got, err := s.Get(d)
	if err != nil || string(got) != "content" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Idempotent put.
	if d2 := s.Put([]byte("content")); d2 != d || s.Len() != 1 {
		t.Fatal("duplicate Put must be a no-op")
	}
	if _, err := s.Get(HashContent([]byte("missing"))); err == nil {
		t.Fatal("Get of missing blob must fail")
	}
	// Returned blob must be a copy.
	got[0] = 'X'
	again, err := s.Get(d)
	if err != nil || string(again) != "content" {
		t.Fatal("caller mutation leaked into the store")
	}
}

func TestCommitCopiesContent(t *testing.T) {
	f := NewFile("a")
	buf := []byte("original\n")
	f.Commit(buf, "u", "", t0)
	buf[0] = 'X'
	content, _, err := f.Head()
	if err != nil || string(content) != "original\n" {
		t.Fatal("Commit must copy caller's buffer")
	}
}

// TestQuickRevisionChain commits random version histories and verifies
// every historical revision reconstructs exactly.
func TestQuickRevisionChain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		file := NewFile("f")
		var versions []string
		doc := ""
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			// Random edit of the previous version.
			lines := strings.SplitAfter(doc, "\n")
			if len(lines) > 0 && lines[len(lines)-1] == "" {
				lines = lines[:len(lines)-1]
			}
			for e := rng.Intn(4) + 1; e > 0; e-- {
				p := 0
				if len(lines) > 0 {
					p = rng.Intn(len(lines))
				}
				switch {
				case len(lines) == 0 || rng.Intn(2) == 0:
					nl := append([]string(nil), lines[:p]...)
					nl = append(nl, fmt.Sprintf("l%d\n", rng.Intn(1000)))
					lines = append(nl, lines[p:]...)
				default:
					lines = append(lines[:p:p], lines[p+1:]...)
				}
			}
			doc = strings.Join(lines, "")
			versions = append(versions, doc)
			file.Commit([]byte(doc), "u", "", t0)
		}
		for i, want := range versions {
			got, _, err := file.At(i + 1)
			if err != nil || string(got) != want {
				t.Logf("At(%d): %q want %q err %v", i+1, got, want, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
