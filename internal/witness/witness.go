// Package witness implements the availability layer of Trusted CVS:
// N independent witness servers that receive the primary's signed
// epoch root commitments, cross-audit them by gossip, convert any fork
// into a signed evidence bundle (internal/forensics), and hold the
// checksummed checkpoint from which one of them can be promoted when
// the primary dies.
//
// Trust model: witnesses are exactly as untrusted as the primary. A
// witness can lie, stall, or collude — but it cannot forge the
// primary's Ed25519 signature, so the only damage a lying witness can
// do is withhold information (handled by quorum: clients require
// agreement from a quorum of witnesses, so one mute or lying witness
// changes nothing). Divergence therefore yields *evidence*, never
// repair: the system's job, per the paper, is to detect and prove
// deviation, not to reconcile two histories neither of which is
// trusted.
//
// An Identity's commitment stream is single-incarnation: Seq is
// monotone for the life of the process. A recovered primary must
// either restore its publisher counters with its checkpoint or come
// back under a fresh identity (promotion does the latter), because a
// same-name restart that re-commits from Seq 1 is indistinguishable
// from equivocation — by design.
package witness

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/forensics"
)

// Identity is a server's signing identity for commitment publication
// — the server-side analogue of sig.Signer, which is deliberately not
// reused: users sign protocol states, servers sign commitments, and
// the two key spaces must never overlap.
type Identity struct {
	name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewIdentity generates a fresh identity named name using crypto/rand.
func NewIdentity(name string) (*Identity, error) {
	return NewIdentityFrom(name, rand.Reader)
}

// NewIdentityFrom generates an identity from the given entropy source
// (tests pass a seeded reader).
func NewIdentityFrom(name string, r io.Reader) (*Identity, error) {
	if name == "" {
		return nil, errors.New("witness: identity needs a non-empty name")
	}
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("witness: generate identity %q: %w", name, err)
	}
	return &Identity{name: name, priv: priv, pub: pub}, nil
}

// Name returns the identity's stable name.
func (id *Identity) Name() string { return id.name }

// Public returns the identity's public key.
func (id *Identity) Public() ed25519.PublicKey { return id.pub }

// Commit builds and signs one commitment in this identity's stream.
func (id *Identity) Commit(seq, ctr uint64, root, prev digest.Digest) *forensics.Commitment {
	h := forensics.CommitmentHash(id.name, seq, ctr, root, prev)
	return &forensics.Commitment{
		Server: id.name,
		Seq:    seq,
		Ctr:    ctr,
		Root:   root,
		Prev:   prev,
		Sig:    ed25519.Sign(id.priv, h[:]),
	}
}

// DefaultWindow is how many recent commitments a Log retains when the
// caller passes 0. The window bounds witness memory (the paper's
// desideratum 5 extended to witnesses) and is also the fork-detection
// horizon: two fork branches are caught as long as their commitments
// land within one window of each other, which gossiping every round
// guarantees.
const DefaultWindow = 64

// ErrKeyConflict is returned when a commitment claims a server name
// already pinned to a different public key.
var ErrKeyConflict = errors.New("witness: conflicting public key for server")

// Log is one witness's bounded view of one server's commitment
// stream, indexed for the three conflict predicates (same-ctr fork,
// same-seq equivocation, chain break). Append is where divergence
// detection happens: the first time two validly signed, conflicting
// commitments meet in the same Log — whether by direct submission or
// by gossip — an Evidence bundle is born.
type Log struct {
	mu     sync.Mutex
	server string
	pub    ed25519.PublicKey
	window int
	bySeq  map[uint64]*forensics.Commitment
	byCtr  map[uint64]*forensics.Commitment
	order  []uint64 // seqs in arrival order, for eviction
}

// NewLog creates a log for the named server. pub may be nil, in which
// case the first validly structured submission pins the key
// (trust-on-first-use; production deployments pass the key from
// configuration). window 0 selects DefaultWindow.
func NewLog(server string, pub ed25519.PublicKey, window int) *Log {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Log{
		server: server,
		pub:    pub,
		window: window,
		bySeq:  make(map[uint64]*forensics.Commitment),
		byCtr:  make(map[uint64]*forensics.Commitment),
	}
}

// Server returns the name of the server this log audits.
func (l *Log) Server() string { return l.server }

// Public returns the pinned public key (nil if nothing submitted yet).
func (l *Log) Public() ed25519.PublicKey {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pub
}

// Append verifies and stores one commitment. It returns a non-nil
// Evidence when c conflicts with a commitment already in the log —
// the commitment is still stored, so the log keeps accumulating both
// fork branches for later audits. Duplicate submissions are no-ops.
func (l *Log) Append(c *forensics.Commitment, pub ed25519.PublicKey) (*forensics.Evidence, error) {
	if c == nil {
		return nil, errors.New("witness: nil commitment")
	}
	if c.Server != l.server {
		return nil, fmt.Errorf("witness: commitment for %q submitted to log of %q", c.Server, l.server)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pub == nil {
		if len(pub) != ed25519.PublicKeySize {
			return nil, fmt.Errorf("witness: no key pinned for %q and submission carries none", l.server)
		}
		l.pub = append(ed25519.PublicKey(nil), pub...)
	} else if pub != nil && !l.pub.Equal(pub) {
		return nil, fmt.Errorf("%w %q", ErrKeyConflict, l.server)
	}
	if err := c.Verify(l.pub); err != nil {
		return nil, err
	}
	if old := l.bySeq[c.Seq]; old != nil && old.Same(c) {
		return nil, nil
	}
	ev := l.conflictLocked(c)
	l.insertLocked(c)
	return ev, nil
}

// conflictLocked scans the three predicates against the stored window.
func (l *Log) conflictLocked(c *forensics.Commitment) *forensics.Evidence {
	for _, old := range []*forensics.Commitment{
		l.bySeq[c.Seq],   // equivocation: two payloads under one seq
		l.byCtr[c.Ctr],   // fork: two roots for one ctr
		l.bySeq[c.Seq-1], // chain break: Prev contradicts seq-1's Root
		l.bySeq[c.Seq+1], // chain break, other direction
	} {
		if old == nil {
			continue
		}
		if old.Conflicts(c) != "" {
			return &forensics.Evidence{
				Server:    l.server,
				Pub:       append([]byte(nil), l.pub...),
				A:         *old,
				B:         *c,
				Witnesses: nil, // filled by the owning node
			}
		}
	}
	return nil
}

func (l *Log) insertLocked(c *forensics.Commitment) {
	if _, ok := l.bySeq[c.Seq]; !ok {
		l.order = append(l.order, c.Seq)
	}
	l.bySeq[c.Seq] = c
	l.byCtr[c.Ctr] = c
	for len(l.order) > l.window {
		evict := l.order[0]
		l.order = l.order[1:]
		if old := l.bySeq[evict]; old != nil {
			delete(l.bySeq, evict)
			if l.byCtr[old.Ctr] == old {
				delete(l.byCtr, old.Ctr)
			}
		}
	}
	// A flood of conflicting re-submissions under already-present seqs
	// can orphan byCtr entries (their bySeq partner was overwritten, so
	// eviction never reaches them). Rebuild from bySeq when the index
	// outgrows the window, keeping witness memory bounded even under an
	// adversarial submitter.
	if len(l.byCtr) > 2*l.window {
		nb := make(map[uint64]*forensics.Commitment, len(l.bySeq))
		for _, cc := range l.bySeq {
			nb[cc.Ctr] = cc
		}
		l.byCtr = nb
	}
}

// Latest returns the stored commitment with the highest Seq (nil when
// empty).
func (l *Log) Latest() *forensics.Commitment {
	l.mu.Lock()
	defer l.mu.Unlock()
	var best *forensics.Commitment
	for _, c := range l.bySeq {
		if best == nil || c.Seq > best.Seq {
			best = c
		}
	}
	return best
}

// At returns the stored commitment for an operation counter (nil when
// none in the window).
func (l *Log) At(ctr uint64) *forensics.Commitment {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.byCtr[ctr]
}

// Window returns the stored commitments in arrival order — what one
// gossip round ships to a peer.
func (l *Log) Window() []*forensics.Commitment {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*forensics.Commitment, 0, len(l.order))
	for _, seq := range l.order {
		if c := l.bySeq[seq]; c != nil {
			out = append(out, c)
		}
	}
	return out
}
