package witness

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/forensics"
)

// ErrDiverged is wrapped by Check.Verify when the witness quorum's
// signed view of the server contradicts what this client verified
// through its own VOs — the server is showing different histories to
// different observers. Callers surface it as a WitnessDivergence
// detection; it is never retryable.
var ErrDiverged = errors.New("witness: quorum commitment diverges from locally verified root")

// ErrNoQuorum is wrapped by Check.Verify when too few witnesses
// answered to conclude anything. Unlike ErrDiverged it is an
// availability problem, not a detection: the caller should retry
// later, not raise an alarm — conflating the two is exactly the false
// positive E15 measures against.
var ErrNoQuorum = errors.New("witness: quorum not reachable")

// DefaultCheckWindow bounds how many recently verified (ctr, root)
// pairs a Check remembers for cross-checking. It must comfortably
// exceed the publisher's commit cadence or commitments fall between
// remembered heads and the check degrades to signature-only.
const DefaultCheckWindow = 1024

// Check is the client-side witness cross-check: it accumulates the
// roots this client verified through VOs (Observe) and compares them
// against the signed commitments the witness quorum holds (Verify).
// Safe for concurrent use by a driver's report goroutines.
type Check struct {
	server string
	pub    ed25519.PublicKey
	quorum int
	window int

	mu        sync.Mutex
	witnesses map[string]DialFunc
	roots     map[uint64]digest.Digest
	order     []uint64
	evidence  []*forensics.Evidence
}

// NewCheck creates a check against the named server, whose commitment
// public key the client knows out of band. quorum is how many
// witnesses must answer for Verify to conclude; 0 selects a simple
// majority of the registered witnesses.
func NewCheck(serverName string, pub ed25519.PublicKey, quorum int) *Check {
	return &Check{
		server:    serverName,
		pub:       append(ed25519.PublicKey(nil), pub...),
		quorum:    quorum,
		window:    DefaultCheckWindow,
		witnesses: make(map[string]DialFunc),
		roots:     make(map[uint64]digest.Digest),
	}
}

// SetWindow resizes the remembered-roots window (0 restores
// DefaultCheckWindow). Epoch-audit deployments size it to a small
// multiple of the epoch length: with commitments on the epoch grid and
// verification lagging up to one pipelined epoch behind, a window of
// one epoch can evict the boundary commitment's root before the check
// runs, silently degrading it to signature-only. Call before the first
// operation.
func (c *Check) SetWindow(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		n = DefaultCheckWindow
	}
	c.window = n
}

// AddWitness registers a witness endpoint to query.
func (c *Check) AddWitness(name string, dial DialFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.witnesses[name] = dial
}

// Observe records a (ctr, root) pair this client verified through a
// VO. Old pairs are evicted once the window fills.
func (c *Check) Observe(ctr uint64, root digest.Digest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeLocked(ctr, root)
}

// Observation is one verified (ctr, root) pair, the batch element of
// ObserveBatch.
type Observation struct {
	Ctr  uint64
	Root digest.Digest
}

// ObserveBatch records a batch of verified pairs under one lock
// hand-off — the epoch auditor's per-batch amortization of Observe.
func (c *Check) ObserveBatch(obs []Observation) {
	if len(obs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, o := range obs {
		c.observeLocked(o.Ctr, o.Root)
	}
}

func (c *Check) observeLocked(ctr uint64, root digest.Digest) {
	if ctr == 0 {
		return
	}
	// Keep the first pair recorded per ctr: two VOs verifying different
	// roots for one global counter would already have tripped the
	// protocol's own register checks.
	if _, ok := c.roots[ctr]; ok {
		return
	}
	c.roots[ctr] = root
	c.order = append(c.order, ctr)
	for len(c.order) > c.window {
		delete(c.roots, c.order[0])
		c.order = c.order[1:]
	}
}

// Verify queries every registered witness and cross-checks. It
// returns nil when a quorum answered and nothing contradicted;
// ErrNoQuorum when too few answered; ErrDiverged when any validly
// signed commitment names a root this client verified differently at
// the same ctr, or when any witness presents a verifiable evidence
// bundle against the server.
func (c *Check) Verify() error {
	c.mu.Lock()
	witnesses := make(map[string]DialFunc, len(c.witnesses))
	for name, dial := range c.witnesses {
		witnesses[name] = dial
	}
	quorum := c.quorum
	c.mu.Unlock()
	if quorum <= 0 {
		quorum = len(witnesses)/2 + 1
	}

	answered := 0
	var dialErrs []error
	for name, dial := range witnesses {
		reply, err := c.queryOne(dial)
		if err != nil {
			dialErrs = append(dialErrs, fmt.Errorf("witness %s: %w", name, err))
			continue
		}
		answered++
		if err := c.checkReply(name, reply); err != nil {
			return err
		}
	}
	if answered < quorum {
		return fmt.Errorf("%w: %d of %d answered (need %d): %w",
			ErrNoQuorum, answered, len(witnesses), quorum, errors.Join(dialErrs...))
	}
	return nil
}

func (c *Check) queryOne(dial DialFunc) (*LatestReply, error) {
	caller, err := dial()
	if err != nil {
		return nil, err
	}
	defer caller.Close()
	resp, err := caller.Call(&LatestRequest{Server: c.server})
	if err != nil {
		return nil, err
	}
	reply, ok := resp.(*LatestReply)
	if !ok {
		return nil, fmt.Errorf("witness answered %T to latest request", resp)
	}
	return reply, nil
}

// checkReply evaluates one witness's answer. Anything the witness says
// is checked against the primary's signature before it is believed: a
// lying witness can fabricate neither commitments nor evidence, only
// withhold them.
func (c *Check) checkReply(name string, reply *LatestReply) error {
	for _, ev := range reply.Evidence {
		if ev == nil || ev.Server != c.server {
			continue
		}
		if !ed25519.PublicKey(ev.Pub).Equal(c.pub) {
			continue // evidence against some other key holder, not our server
		}
		if err := ev.Verify(); err != nil {
			continue // fabricated bundle; ignore the witness's claim
		}
		c.mu.Lock()
		c.evidence = forensics.MergeEvidence(c.evidence, ev)
		c.mu.Unlock()
		return fmt.Errorf("%w: witness %s holds signed fork evidence: %s", ErrDiverged, name, ev.String())
	}
	if reply.Commit == nil {
		return nil // nothing committed yet; fine early in a run
	}
	if err := reply.Commit.Verify(c.pub); err != nil {
		// A commitment that does not verify under the real key is noise a
		// lying witness injected; it proves nothing either way.
		return nil
	}
	c.mu.Lock()
	local, seen := c.roots[reply.Commit.Ctr]
	c.mu.Unlock()
	if seen && local != reply.Commit.Root {
		return fmt.Errorf("%w: server committed root %s to witness %s at ctr %d, but this client verified %s",
			ErrDiverged, reply.Commit.Root.Short(), name, reply.Commit.Ctr, local.Short())
	}
	return nil
}

// Evidence returns the verified evidence bundles collected so far.
func (c *Check) Evidence() []*forensics.Evidence {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*forensics.Evidence(nil), c.evidence...)
}
