package witness

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/forensics"
	"trustedcvs/internal/server"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
)

// Wire messages. A witness node serves them through the ordinary
// transport server, so the fault harness, deadlines, and codec are all
// shared with the primary's own protocol traffic.

// SubmitRequest delivers one commitment from the publisher (or a
// relaying witness). Pub carries the publisher's key for first-use
// pinning; a pinned node ignores it unless it conflicts.
type SubmitRequest struct {
	Commit *forensics.Commitment
	Pub    []byte
}

// SubmitReply acknowledges a submission.
type SubmitReply struct{ OK bool }

// SnapshotPut ships the primary's latest checksummed checkpoint
// envelope (server.EncodeP2Snapshot bytes) with the head it was cut
// at. Witnesses keep only the newest accepted envelope per server.
type SnapshotPut struct {
	Server string
	Ctr    uint64
	Root   digest.Digest
	Data   []byte
}

// SnapshotReply acknowledges a snapshot.
type SnapshotReply struct{ OK bool }

// LatestRequest asks a witness for its newest commitment for one
// server, plus any evidence it holds against that server.
type LatestRequest struct{ Server string }

// LatestReply answers a LatestRequest. Commit is nil when the witness
// has seen nothing yet.
type LatestReply struct {
	Commit   *forensics.Commitment
	Pub      []byte
	Evidence []*forensics.Evidence
}

// GossipRequest carries one node's full commitment windows to a peer;
// the peer merges them and replies with its own, so one exchange makes
// the pair's views converge — which is why a fork split across
// disjoint witness subsets is detected within one gossip round.
type GossipRequest struct {
	From    string
	Pubs    map[string][]byte
	Commits []*forensics.Commitment
	// Evidence carries the sender's bundles. Bundles are
	// self-authenticating (Evidence.Verify), so receiving one from a
	// lying peer is harmless — it either proves real equivocation or is
	// dropped. Shipping them matters because a log stores one
	// commitment per seq: the losing branch survives only inside the
	// bundle minted when the branches first met.
	Evidence []*forensics.Evidence
}

// GossipReply mirrors the receiving node's windows back.
type GossipReply struct {
	Pubs     map[string][]byte
	Commits  []*forensics.Commitment
	Evidence []*forensics.Evidence
}

func init() {
	gob.Register(&SubmitRequest{})
	gob.Register(&SubmitReply{})
	gob.Register(&SnapshotPut{})
	gob.Register(&SnapshotReply{})
	gob.Register(&LatestRequest{})
	gob.Register(&LatestReply{})
	gob.Register(&GossipRequest{})
	gob.Register(&GossipReply{})
}

// DialFunc opens a fresh connection to a peer (witness or primary).
// In-process deployments return a transport.Inproc; live ones wrap
// transport.Dial. The caller closes the returned Caller.
type DialFunc func() (transport.Caller, error)

// storedSnap is the newest validated checkpoint for one server.
type storedSnap struct {
	ctr  uint64
	root digest.Digest
	data []byte
}

// Node is one witness server: per-primary commitment logs, the newest
// validated checkpoint, gossip peers, and the evidence it has derived.
// All methods are safe for concurrent use.
type Node struct {
	name   string
	window int

	mu       sync.Mutex
	logs     map[string]*Log
	snaps    map[string]*storedSnap
	peers    map[string]DialFunc
	evidence []*forensics.Evidence
}

// NewNode creates a witness named name. window 0 selects
// DefaultWindow.
func NewNode(name string, window int) *Node {
	return &Node{
		name:   name,
		window: window,
		logs:   make(map[string]*Log),
		snaps:  make(map[string]*storedSnap),
		peers:  make(map[string]DialFunc),
	}
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Pin registers a server's public key ahead of any submission, closing
// the trust-on-first-use window for deployments that distribute keys
// out of band. Pinning after a different key is already in place is
// ignored here; the conflicting submission itself will be rejected.
func (n *Node) Pin(serverName string, pub []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.logs[serverName] == nil {
		n.logs[serverName] = NewLog(serverName, append([]byte(nil), pub...), n.window)
	}
}

// log returns (creating on demand) the commitment log for one server.
func (n *Node) log(serverName string) *Log {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.logs[serverName]
	if l == nil {
		l = NewLog(serverName, nil, n.window)
		n.logs[serverName] = l
	}
	return l
}

// AddPeer registers a gossip peer.
func (n *Node) AddPeer(name string, dial DialFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[name] = dial
}

// Handler returns the transport handler serving the witness wire
// protocol.
func (n *Node) Handler() transport.Handler {
	return func(req any) (any, error) {
		switch r := req.(type) {
		case *SubmitRequest:
			return n.handleSubmit(r)
		case *SnapshotPut:
			return n.handleSnapshot(r)
		case *LatestRequest:
			return n.handleLatest(r), nil
		case *GossipRequest:
			return n.handleGossip(r)
		default:
			return nil, fmt.Errorf("witness: unexpected request type %T", req)
		}
	}
}

func (n *Node) handleSubmit(r *SubmitRequest) (*SubmitReply, error) {
	if r.Commit == nil {
		return nil, errors.New("witness: submit without commitment")
	}
	//lint:ignore verifyflow Log.Append is the guarded boundary: it pins the server key on first contact and verifies every commitment signature against it before storing (witness.Log.Append), which callers cannot do earlier
	if err := n.absorb(r.Commit, r.Pub); err != nil {
		return nil, err
	}
	return &SubmitReply{OK: true}, nil
}

// absorb feeds one commitment into the right log and files any
// evidence it produces. Evidence is filed, not returned to the
// submitter: an equivocating primary learns nothing from its ack.
func (n *Node) absorb(c *forensics.Commitment, pub []byte) error {
	ev, err := n.log(c.Server).Append(c, pub)
	if err != nil {
		return err
	}
	if ev != nil {
		ev.Witnesses = []string{n.name}
		n.mu.Lock()
		n.evidence = forensics.MergeEvidence(n.evidence, ev)
		n.mu.Unlock()
	}
	return nil
}

// handleSnapshot validates and stores a checkpoint envelope. The
// envelope's own checksum frame is verified by decoding it, and the
// restored database must reproduce exactly the declared (ctr, root) —
// a witness never stores a checkpoint it could not vouch for at
// promotion time.
func (n *Node) handleSnapshot(r *SnapshotPut) (*SnapshotReply, error) {
	snap, err := server.DecodeP2Snapshot(bytes.NewReader(r.Data))
	if err != nil {
		return nil, fmt.Errorf("witness: reject snapshot for %q: %w", r.Server, err)
	}
	db, err := vdb.RestoreDB(snap.DB)
	if err != nil {
		return nil, fmt.Errorf("witness: reject snapshot for %q: %w", r.Server, err)
	}
	ctr, root := db.Head()
	if ctr != r.Ctr || root != r.Root {
		return nil, fmt.Errorf("witness: snapshot for %q restores to (ctr %d, root %s), declared (ctr %d, root %s)",
			r.Server, ctr, root.Short(), r.Ctr, r.Root.Short())
	}
	n.mu.Lock()
	old := n.snaps[r.Server]
	if old == nil || r.Ctr >= old.ctr {
		n.snaps[r.Server] = &storedSnap{ctr: r.Ctr, root: r.Root, data: append([]byte(nil), r.Data...)}
	}
	n.mu.Unlock()
	return &SnapshotReply{OK: true}, nil
}

func (n *Node) handleLatest(r *LatestRequest) *LatestReply {
	l := n.log(r.Server)
	reply := &LatestReply{Commit: l.Latest(), Pub: l.Public()}
	n.mu.Lock()
	for _, ev := range n.evidence {
		if ev.Server == r.Server {
			reply.Evidence = append(reply.Evidence, ev)
		}
	}
	n.mu.Unlock()
	return reply
}

func (n *Node) handleGossip(r *GossipRequest) (*GossipReply, error) {
	for _, c := range r.Commits {
		if c == nil {
			continue
		}
		// A peer relaying garbage (bad signature, key conflict) is its
		// own problem; drop the entry and keep merging the rest.
		//lint:ignore verifyflow Log.Append is the guarded boundary: it verifies every commitment signature against the pinned server key before storing
		_ = n.absorb(c, r.Pubs[c.Server])
	}
	n.mergeEvidence(r.Evidence)
	reply := &GossipReply{}
	reply.Commits, reply.Pubs = n.export()
	reply.Evidence = n.Evidence()
	return reply, nil
}

// mergeEvidence files peer-supplied bundles that verify on their own.
func (n *Node) mergeEvidence(evs []*forensics.Evidence) {
	for _, ev := range evs {
		if ev == nil || ev.Verify() != nil {
			continue
		}
		n.mu.Lock()
		n.evidence = forensics.MergeEvidence(n.evidence, ev)
		n.mu.Unlock()
	}
}

// export snapshots every log's window for gossip.
func (n *Node) export() ([]*forensics.Commitment, map[string][]byte) {
	n.mu.Lock()
	logs := make([]*Log, 0, len(n.logs))
	for _, l := range n.logs {
		logs = append(logs, l)
	}
	n.mu.Unlock()
	var commits []*forensics.Commitment
	pubs := make(map[string][]byte)
	for _, l := range logs {
		commits = append(commits, l.Window()...)
		if pub := l.Public(); pub != nil {
			pubs[l.Server()] = pub
		}
	}
	return commits, pubs
}

// GossipOnce runs one push-pull exchange with every registered peer.
// Per-peer failures are collected, not fatal: gossip is best-effort
// and the next round retries.
func (n *Node) GossipOnce() error {
	n.mu.Lock()
	peers := make(map[string]DialFunc, len(n.peers))
	for name, dial := range n.peers {
		peers[name] = dial
	}
	n.mu.Unlock()

	commits, pubs := n.export()
	evidence := n.Evidence()
	var errs []error
	for name, dial := range peers {
		caller, err := dial()
		if err != nil {
			errs = append(errs, fmt.Errorf("witness %s: dial peer %s: %w", n.name, name, err))
			continue
		}
		resp, err := caller.Call(&GossipRequest{From: n.name, Pubs: pubs, Commits: commits, Evidence: evidence})
		caller.Close()
		if err != nil {
			errs = append(errs, fmt.Errorf("witness %s: gossip with %s: %w", n.name, name, err))
			continue
		}
		reply, ok := resp.(*GossipReply)
		if !ok {
			errs = append(errs, fmt.Errorf("witness %s: peer %s answered %T to gossip", n.name, name, resp))
			continue
		}
		for _, c := range reply.Commits {
			if c == nil {
				continue
			}
			//lint:ignore verifyflow Log.Append is the guarded boundary: it verifies every commitment signature against the pinned server key before storing
			_ = n.absorb(c, reply.Pubs[c.Server])
		}
		n.mergeEvidence(reply.Evidence)
	}
	return errors.Join(errs...)
}

// Evidence returns a copy of every evidence bundle this node holds.
func (n *Node) Evidence() []*forensics.Evidence {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*forensics.Evidence(nil), n.evidence...)
}

// Latest returns the node's newest commitment for one server (nil when
// none).
func (n *Node) Latest(serverName string) *forensics.Commitment {
	return n.log(serverName).Latest()
}

// StoredSnapshot returns the newest validated checkpoint for one
// server (ok=false when none has been shipped).
func (n *Node) StoredSnapshot(serverName string) (data []byte, ctr uint64, root digest.Digest, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.snaps[serverName]
	if s == nil {
		return nil, 0, digest.Zero, false
	}
	return s.data, s.ctr, s.root, true
}
