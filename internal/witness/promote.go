package witness

import (
	"bytes"
	"fmt"

	"trustedcvs/internal/cvs"
	"trustedcvs/internal/server"
	"trustedcvs/internal/transport"
)

// Promotion is a witness turned primary: the restored protocol server,
// content store, and session table, plus the head the checkpoint was
// cut at. The caller wires these into a transport (they carry no
// network state) and hands clients the new endpoint; the restored
// session table is what makes the cut exactly-once — a client retry
// that was in flight when the old primary died replays its cached
// outcome instead of double-applying.
type Promotion struct {
	Server   server.Server
	Store    *cvs.Store
	Sessions *transport.SessionTable
	Ctr      uint64
	Root     [32]byte
}

// Promote rebuilds a primary from the node's stored checkpoint for the
// named server. The envelope's checksum frame was verified at storage
// time and is verified again here (the bytes sat in memory; promotion
// is exactly the wrong moment to start trusting them), and the
// restored database must reproduce the head the checkpoint declared.
//
// The promoted server runs under a NEW identity: the old primary's
// commitment stream dies with it, because a promoted witness that
// continued the old stream would be indistinguishable from an
// equivocating primary. Callers create a fresh Identity and Publisher
// for the promoted node.
func Promote(n *Node, serverName string) (*Promotion, error) {
	data, ctr, root, ok := n.StoredSnapshot(serverName)
	if !ok {
		return nil, fmt.Errorf("witness %s: no checkpoint stored for %q; cannot promote", n.name, serverName)
	}
	snap, err := server.DecodeP2Snapshot(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("witness %s: promote %q: %w", n.name, serverName, err)
	}
	srv, store, err := server.RestoreP2(snap)
	if err != nil {
		return nil, fmt.Errorf("witness %s: promote %q: %w", n.name, serverName, err)
	}
	gotCtr, gotRoot := srv.DB().Head()
	if gotCtr != ctr || gotRoot != root {
		return nil, fmt.Errorf("witness %s: promote %q: checkpoint restores to (ctr %d, root %s), stored head was (ctr %d, root %s)",
			n.name, serverName, gotCtr, gotRoot.Short(), ctr, root.Short())
	}
	// Cross-check against the commitment log: if the primary committed a
	// different root for this ctr than the checkpoint reproduces, the
	// checkpoint itself is a fork artifact and must not be promoted.
	if c := n.log(serverName).At(ctr); c != nil && c.Root != root {
		return nil, fmt.Errorf("witness %s: promote %q: checkpoint root %s contradicts committed root %s at ctr %d",
			n.name, serverName, root.Short(), c.Root.Short(), ctr)
	}
	sessions := transport.NewSessionTable(0)
	if snap.Sessions != nil {
		sessions.RestoreSessions(snap.Sessions)
	}
	return &Promotion{Server: srv, Store: store, Sessions: sessions, Ctr: gotCtr, Root: gotRoot}, nil
}
