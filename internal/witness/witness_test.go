package witness

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"strings"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/forensics"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/server"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
)

func testIdentity(t *testing.T, name string, seed int64) *Identity {
	t.Helper()
	id, err := NewIdentityFrom(name, mrand.New(mrand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func root(b byte) digest.Digest {
	var d digest.Digest
	d[0] = b
	return d
}

func inproc(n *Node) DialFunc {
	return func() (transport.Caller, error) {
		return transport.NewInproc(n.Handler()), nil
	}
}

func TestLogAcceptsHonestStream(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	l := NewLog("primary", nil, 4)
	prev := digest.Zero
	for i := uint64(1); i <= 10; i++ {
		c := id.Commit(i, i*8, root(byte(i)), prev)
		ev, err := l.Append(c, id.Public())
		if err != nil {
			t.Fatalf("seq %d: %v", i, err)
		}
		if ev != nil {
			t.Fatalf("seq %d: false evidence: %s", i, ev)
		}
		prev = root(byte(i))
	}
	if got := l.Latest(); got == nil || got.Seq != 10 {
		t.Fatalf("Latest = %+v, want seq 10", got)
	}
	// Window of 4: old entries evicted.
	if c := l.At(8); c == nil || c.Seq != 1 {
		if c != nil {
			t.Fatalf("At(8) = seq %d", c.Seq)
		}
		// evicted is fine for seq 1 with window 4
	}
	if got := len(l.Window()); got != 4 {
		t.Fatalf("window holds %d entries, want 4", got)
	}
}

func TestLogRejectsBadSignatureAndWrongKey(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	imp := testIdentity(t, "primary", 2) // same name, different key
	l := NewLog("primary", nil, 0)
	if _, err := l.Append(id.Commit(1, 8, root(1), digest.Zero), id.Public()); err != nil {
		t.Fatal(err)
	}
	// Impostor's key conflicts with the pinned one.
	if _, err := l.Append(imp.Commit(2, 16, root(2), root(1)), imp.Public()); !errors.Is(err, ErrKeyConflict) {
		t.Fatalf("impostor submission: %v, want ErrKeyConflict", err)
	}
	// Tampered commitment under the right key fails signature check.
	c := id.Commit(2, 16, root(2), root(1))
	c.Root = root(99)
	if _, err := l.Append(c, nil); err == nil {
		t.Fatal("tampered commitment accepted")
	}
}

func TestLogDetectsForkAndEquivocation(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	cases := []struct {
		name string
		a, b *forensics.Commitment
	}{
		{"same-ctr fork", id.Commit(5, 40, root(1), root(9)), id.Commit(6, 40, root(2), root(9))},
		{"same-seq equivocation", id.Commit(5, 40, root(1), root(9)), id.Commit(5, 48, root(2), root(9))},
		{"chain break", id.Commit(5, 40, root(1), root(9)), id.Commit(6, 48, root(2), root(7))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLog("primary", id.Public(), 0)
			if ev, err := l.Append(tc.a, nil); err != nil || ev != nil {
				t.Fatalf("first append: ev=%v err=%v", ev, err)
			}
			ev, err := l.Append(tc.b, nil)
			if err != nil {
				t.Fatal(err)
			}
			if ev == nil {
				t.Fatal("conflict not detected")
			}
			if err := ev.Verify(); err != nil {
				t.Fatalf("evidence bundle does not verify: %v", err)
			}
		})
	}
}

func TestEvidenceCannotBeFabricated(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	liar := testIdentity(t, "primary", 3)
	// A lying witness invents a conflicting commitment it signed itself.
	ev := &forensics.Evidence{
		Server: "primary",
		Pub:    id.Public(),
		A:      *id.Commit(5, 40, root(1), root(9)),
		B:      *liar.Commit(6, 40, root(2), root(9)),
	}
	if err := ev.Verify(); err == nil {
		t.Fatal("fabricated evidence verified")
	}
	// Non-conflicting pairs prove nothing either.
	ev2 := &forensics.Evidence{
		Server: "primary",
		Pub:    id.Public(),
		A:      *id.Commit(5, 40, root(1), root(9)),
		B:      *id.Commit(6, 48, root(2), root(1)),
	}
	if err := ev2.Verify(); err == nil {
		t.Fatal("compatible commitments accepted as evidence")
	}
}

// TestGossipDetectsForkWithinOneRound is the tentpole's latency bound:
// a fork whose branches were submitted to DISJOINT witnesses becomes
// signed evidence after a single gossip exchange between them.
func TestGossipDetectsForkWithinOneRound(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	w1 := NewNode("w1", 0)
	w2 := NewNode("w2", 0)
	w1.AddPeer("w2", inproc(w2))
	w2.AddPeer("w1", inproc(w1))

	// Common prefix to both, then the fork: branch A to w1, branch B to w2.
	common := id.Commit(1, 8, root(1), digest.Zero)
	branchA := id.Commit(2, 16, root(2), root(1))
	branchB := id.Commit(2, 16, root(3), root(1))
	for _, sub := range []struct {
		n *Node
		c *forensics.Commitment
	}{{w1, common}, {w2, common}, {w1, branchA}, {w2, branchB}} {
		if err := sub.n.absorb(sub.c, id.Public()); err != nil {
			t.Fatal(err)
		}
	}
	if len(w1.Evidence()) != 0 || len(w2.Evidence()) != 0 {
		t.Fatal("false alarm before gossip: each witness saw a consistent branch")
	}

	if err := w1.GossipOnce(); err != nil {
		t.Fatal(err)
	}
	// One round: both sides of the exchange must now hold evidence.
	for _, n := range []*Node{w1, w2} {
		evs := n.Evidence()
		if len(evs) == 0 {
			t.Fatalf("witness %s holds no evidence after one gossip round", n.Name())
		}
		for _, ev := range evs {
			if err := ev.Verify(); err != nil {
				t.Fatalf("witness %s evidence: %v", n.Name(), err)
			}
		}
	}
}

func TestGossipBenignConvergenceNoFalseAlarms(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	nodes := []*Node{NewNode("w1", 0), NewNode("w2", 0), NewNode("w3", 0)}
	for i, n := range nodes {
		for j, p := range nodes {
			if i != j {
				n.AddPeer(p.Name(), inproc(p))
			}
		}
	}
	// An honest stream scattered across witnesses: each commitment
	// reaches only one node (models per-witness delivery failures).
	prev := digest.Zero
	for i := uint64(1); i <= 9; i++ {
		c := id.Commit(i, i*8, root(byte(i)), prev)
		if err := nodes[i%3].absorb(c, id.Public()); err != nil {
			t.Fatal(err)
		}
		prev = root(byte(i))
	}
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			if err := n.GossipOnce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range nodes {
		if evs := n.Evidence(); len(evs) != 0 {
			t.Fatalf("witness %s raised false evidence on an honest scattered stream: %s", n.Name(), evs[0])
		}
		if got := n.Latest("primary"); got == nil || got.Seq != 9 {
			t.Fatalf("witness %s did not converge to seq 9: %+v", n.Name(), got)
		}
	}
}

func TestPublisherCadenceAndChain(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	n := NewNode("w1", 0)
	p := NewPublisher(id, 4)
	p.AddWitness("w1", inproc(n))
	for ctr := uint64(1); ctr <= 12; ctr++ {
		p.OpApplied(ctr, root(byte(ctr)))
	}
	p.Flush()
	if err := p.LastErr(); err != nil {
		t.Fatal(err)
	}
	latest := n.Latest("primary")
	if latest == nil {
		t.Fatal("no commitment reached the witness")
	}
	// Cadence 4 over ctrs 1..12 commits at 4, 8, 12 → seq 3 at ctr 12.
	if latest.Seq != 3 || latest.Ctr != 12 {
		t.Fatalf("latest = seq %d ctr %d, want seq 3 ctr 12", latest.Seq, latest.Ctr)
	}
	if latest.Prev != root(8) {
		t.Fatalf("chain: latest.Prev = %s, want root committed at ctr 8", latest.Prev.Short())
	}
	if evs := n.Evidence(); len(evs) != 0 {
		t.Fatalf("honest publisher produced evidence: %s", evs[0])
	}
}

// buildP2 runs a few verified commits so the snapshot has real history
// and a session table has cached outcomes.
func buildP2(t *testing.T) (server.Server, *cvs.Store, *transport.SessionTable) {
	t.Helper()
	db := vdb.New(0)
	srv := server.NewP2(db)
	store := cvs.NewStore()
	user := proto2.NewUser(0, db.Root(), 1000)
	for i := 1; i <= 5; i++ {
		content := fmt.Sprintf("v%d\n", i)
		op := &cvs.CommitOp{
			Files:  []cvs.CommitFile{{Path: "f", Hash: rcs.HashContent([]byte(content))}},
			Author: "u0", TimeUnix: 1,
		}
		raw, err := srv.HandleOp(user.Request(op))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := user.HandleResponse(op, raw.(*core.OpResponseII)); err != nil {
			t.Fatal(err)
		}
		if err := store.Push("f", uint64(i), []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	return srv, store, transport.NewSessionTable(0)
}

func TestShipSnapshotAndPromote(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	n := NewNode("w1", 0)
	p := NewPublisher(id, 0)
	p.AddWitness("w1", inproc(n))

	srv, store, sessions := buildP2(t)
	snap, err := server.CheckpointP2(srv, store)
	if err != nil {
		t.Fatal(err)
	}
	sessions.Freeze(func(ss *transport.SessionsSnapshot) { snap.Sessions = ss })
	if err := p.ShipSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	p.Flush()

	promo, err := Promote(n, "primary")
	if err != nil {
		t.Fatal(err)
	}
	wantCtr, wantRoot := srv.DB().Head()
	if promo.Ctr != wantCtr || promo.Root != wantRoot {
		t.Fatalf("promoted head (%d, %x) != primary head (%d, %s)", promo.Ctr, promo.Root[:4], wantCtr, wantRoot.Short())
	}
	gotCtr, gotRoot := promo.Server.DB().Head()
	if gotCtr != wantCtr || gotRoot != wantRoot {
		t.Fatal("promoted server head differs from checkpoint head")
	}
	if promo.Sessions == nil {
		t.Fatal("promotion lost the session table")
	}
	if _, err := promo.Store.FetchRev("f", 5); err != nil {
		t.Fatalf("promoted store missing history: %v", err)
	}
}

func TestPromoteRefusesTamperedSnapshot(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	n := NewNode("w1", 0)
	p := NewPublisher(id, 0)
	p.AddWitness("w1", inproc(n))
	srv, store, _ := buildP2(t)
	snap, err := server.CheckpointP2(srv, store)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ShipSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	// Flip a byte inside the stored envelope: promotion must refuse.
	n.mu.Lock()
	stored := n.snaps["primary"]
	stored.data[len(stored.data)/2] ^= 0x40
	n.mu.Unlock()
	if _, err := Promote(n, "primary"); err == nil {
		t.Fatal("promotion accepted a corrupted checkpoint")
	}
}

func TestWitnessRejectsSnapshotWithWrongHead(t *testing.T) {
	n := NewNode("w1", 0)
	srv, store, _ := buildP2(t)
	snap, err := server.CheckpointP2(srv, store)
	if err != nil {
		t.Fatal(err)
	}
	var data strings.Builder
	if err := server.EncodeP2Snapshot(&data, snap); err != nil {
		t.Fatal(err)
	}
	ctr, dbRoot := srv.DB().Head()
	_, err = n.Handler()(&SnapshotPut{Server: "primary", Ctr: ctr + 1, Root: dbRoot, Data: []byte(data.String())})
	if err == nil {
		t.Fatal("witness stored a snapshot whose declared head it cannot reproduce")
	}
}

func TestCheckDivergenceAndBenign(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	w1 := NewNode("w1", 0)
	w2 := NewNode("w2", 0)
	chk := NewCheck("primary", id.Public(), 0)
	chk.AddWitness("w1", inproc(w1))
	chk.AddWitness("w2", inproc(w2))

	// Benign: client verified the same roots the primary committed.
	c1 := id.Commit(1, 8, root(1), digest.Zero)
	for _, n := range []*Node{w1, w2} {
		if err := n.absorb(c1, id.Public()); err != nil {
			t.Fatal(err)
		}
	}
	chk.Observe(8, root(1))
	if err := chk.Verify(); err != nil {
		t.Fatalf("benign verify: %v", err)
	}

	// Divergence: the primary commits root(2) at ctr 16 to witnesses but
	// showed this client root(9) there.
	c2 := id.Commit(2, 16, root(2), root(1))
	for _, n := range []*Node{w1, w2} {
		if err := n.absorb(c2, id.Public()); err != nil {
			t.Fatal(err)
		}
	}
	chk.Observe(16, root(9))
	if err := chk.Verify(); !errors.Is(err, ErrDiverged) {
		t.Fatalf("verify = %v, want ErrDiverged", err)
	}
}

func TestCheckSurfacesWitnessEvidence(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	w1 := NewNode("w1", 0)
	if err := w1.absorb(id.Commit(2, 16, root(2), root(1)), id.Public()); err != nil {
		t.Fatal(err)
	}
	if err := w1.absorb(id.Commit(2, 16, root(3), root(1)), id.Public()); err != nil {
		t.Fatal(err)
	}
	if len(w1.Evidence()) == 0 {
		t.Fatal("equivocation not recorded")
	}
	chk := NewCheck("primary", id.Public(), 1)
	chk.AddWitness("w1", inproc(w1))
	if err := chk.Verify(); !errors.Is(err, ErrDiverged) {
		t.Fatalf("verify = %v, want ErrDiverged from witness evidence", err)
	}
	if len(chk.Evidence()) == 0 {
		t.Fatal("check did not collect the evidence bundle")
	}
	for _, ev := range chk.Evidence() {
		if err := ev.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckQuorum(t *testing.T) {
	id := testIdentity(t, "primary", 1)
	w1 := NewNode("w1", 0)
	down := func() (transport.Caller, error) { return nil, errors.New("connection refused") }
	chk := NewCheck("primary", id.Public(), 2)
	chk.AddWitness("w1", inproc(w1))
	chk.AddWitness("w2", down)
	chk.AddWitness("w3", down)
	if err := chk.Verify(); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("verify = %v, want ErrNoQuorum", err)
	}
	if errors.Is(chk.Verify(), ErrDiverged) {
		t.Fatal("availability failure misclassified as divergence")
	}
	// One more witness up restores the quorum.
	chk2 := NewCheck("primary", id.Public(), 2)
	chk2.AddWitness("w1", inproc(w1))
	chk2.AddWitness("w2", inproc(NewNode("w2", 0)))
	chk2.AddWitness("w3", down)
	if err := chk2.Verify(); err != nil {
		t.Fatalf("quorum of 2/3 should pass: %v", err)
	}
}
