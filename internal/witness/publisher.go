package witness

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/server"
)

// DefaultCommitEvery is the commitment cadence (in database
// operations) when the caller passes 0.
const DefaultCommitEvery = 8

// Publisher is the primary server's side of witness replication: it
// chains and signs commitments over the database head and fans each
// one out to every registered witness. The signing section is a
// mutex-ordered few microseconds; the network fan-out runs on a
// goroutine per commitment so the operation hot path never waits on a
// witness.
type Publisher struct {
	id      *Identity
	every   uint64
	aligned bool

	mu        sync.Mutex
	seq       uint64
	prev      digest.Digest
	nextAt    uint64 // commit when ctr reaches this
	witnesses map[string]DialFunc

	wg sync.WaitGroup

	errMu   sync.Mutex
	lastErr error
}

// NewPublisher creates a publisher for the given identity. every is
// the commitment cadence in operations (0 = DefaultCommitEvery).
func NewPublisher(id *Identity, every uint64) *Publisher {
	if every == 0 {
		every = DefaultCommitEvery
	}
	return &Publisher{
		id:        id,
		every:     every,
		nextAt:    every,
		witnesses: make(map[string]DialFunc),
	}
}

// Identity returns the publisher's signing identity.
func (p *Publisher) Identity() *Identity { return p.id }

// Align pins the commitment cadence to exact multiples of the cadence
// period instead of "every period since the last commit": the next
// commitment after the one covering ctr lands at the first head past
// ctr-ctr%every+every. Epoch-audit deployments call this with the
// cadence set to the epoch length, so every epoch boundary has a
// signed commitment at (or just past) it and the auditor's per-epoch
// quorum check compares against a root from its own epoch window.
// Call before the first operation.
func (p *Publisher) Align() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aligned = true
}

// AddWitness registers a witness endpoint.
func (p *Publisher) AddWitness(name string, dial DialFunc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.witnesses[name] = dial
}

// OpApplied is the server-side hook: call it with the database head
// after each applied operation. Heads must be consistent (vdb.DB.Head)
// but need not be strictly ordered across callers — a stale head is
// simply skipped by the cadence gate.
func (p *Publisher) OpApplied(ctr uint64, root digest.Digest) {
	p.mu.Lock()
	if ctr < p.nextAt {
		p.mu.Unlock()
		return
	}
	c := p.commitLocked(ctr, root)
	p.mu.Unlock()
	p.fanOut(c)
}

// CommitNow signs and publishes a commitment at the given head
// immediately, regardless of cadence — used at checkpoint boundaries
// and by tests. It does not wait for delivery; use Flush.
func (p *Publisher) CommitNow(ctr uint64, root digest.Digest) {
	p.mu.Lock()
	c := p.commitLocked(ctr, root)
	p.mu.Unlock()
	p.fanOut(c)
}

func (p *Publisher) commitLocked(ctr uint64, root digest.Digest) *SubmitRequest {
	p.seq++
	c := p.id.Commit(p.seq, ctr, root, p.prev)
	p.prev = root
	if p.aligned {
		// Next boundary strictly past ctr: commitments track the
		// epoch grid rather than drifting by the offset of whatever
		// head happened to trip the previous commit.
		p.nextAt = ctr - ctr%p.every + p.every
	} else {
		p.nextAt = ctr + p.every
	}
	return &SubmitRequest{Commit: c, Pub: append([]byte(nil), p.id.Public()...)}
}

// fanOut delivers one commitment to every witness, best-effort, off
// the caller's goroutine. A witness that is down misses this
// commitment and catches up by gossip.
func (p *Publisher) fanOut(req *SubmitRequest) {
	p.mu.Lock()
	targets := make(map[string]DialFunc, len(p.witnesses))
	for name, dial := range p.witnesses {
		targets[name] = dial
	}
	p.mu.Unlock()
	for name, dial := range targets {
		p.wg.Add(1)
		go func(name string, dial DialFunc) {
			defer p.wg.Done()
			if err := deliver(dial, req); err != nil {
				p.noteErr(fmt.Errorf("publish to %s: %w", name, err))
			}
		}(name, dial)
	}
}

func deliver(dial DialFunc, req any) error {
	caller, err := dial()
	if err != nil {
		return err
	}
	defer caller.Close()
	_, err = caller.Call(req)
	return err
}

func (p *Publisher) noteErr(err error) {
	p.errMu.Lock()
	p.lastErr = err
	p.errMu.Unlock()
}

// LastErr returns the most recent delivery failure (nil when all
// deliveries so far succeeded). Purely informational: delivery is
// best-effort by design.
func (p *Publisher) LastErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.lastErr
}

// Flush waits for every in-flight delivery to finish. Call before
// asserting on witness state (tests) or before shutting down.
func (p *Publisher) Flush() { p.wg.Wait() }

// ShipSnapshot encodes a checkpoint and delivers it, with a fresh
// commitment over the same head, to every witness synchronously. The
// snapshot must have been cut under a transport freeze (see
// server.CheckpointP2); err aggregates per-witness failures, and the
// shipment counts as delivered if at least one witness accepted —
// the quorum read at promotion time tolerates stragglers.
func (p *Publisher) ShipSnapshot(snap *server.P2Snapshot) error {
	var buf bytes.Buffer
	if err := server.EncodeP2Snapshot(&buf, snap); err != nil {
		return err
	}
	// Re-derive the head from the snapshot itself rather than trusting a
	// caller-supplied pair: the publisher never commits to a head it did
	// not read out of the bytes being shipped.
	srv, _, err := server.RestoreP2(snap)
	if err != nil {
		return err
	}
	ctr, root := srv.DB().Head()
	p.CommitNow(ctr, root)
	put := &SnapshotPut{Server: p.id.Name(), Ctr: ctr, Root: root, Data: buf.Bytes()}

	p.mu.Lock()
	targets := make(map[string]DialFunc, len(p.witnesses))
	for name, dial := range p.witnesses {
		targets[name] = dial
	}
	p.mu.Unlock()
	if len(targets) == 0 {
		return errors.New("witness: no witnesses registered to ship snapshot to")
	}
	var errs []error
	delivered := 0
	for name, dial := range targets {
		if err := deliver(dial, put); err != nil {
			errs = append(errs, fmt.Errorf("ship snapshot to %s: %w", name, err))
			continue
		}
		delivered++
	}
	if delivered == 0 {
		return errors.Join(errs...)
	}
	return nil
}
