package witness

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/server"
)

// DefaultCommitEvery is the commitment cadence (in database
// operations) when the caller passes 0.
const DefaultCommitEvery = 8

// Publisher is the primary server's side of witness replication: it
// chains and signs commitments over the database head and fans each
// one out to every registered witness. The signing section is a
// mutex-ordered few microseconds; the network fan-out is rate-limited
// per witness: one delivery worker per witness with a one-slot
// latest-wins mailbox, so however fast commitments arrive, a witness
// sees at most one in-flight delivery plus one queued — never a
// goroutine pile-up (the unbounded goroutine-per-commitment fan-out
// was the E20 scaling blocker). Skipped intermediates are safe by the
// same argument as a witness being down: it misses those commitments
// and catches up by gossip; only the freshest root matters for the
// quorum check.
type Publisher struct {
	id      *Identity
	every   uint64
	aligned bool

	mu     sync.Mutex
	seq    uint64
	prev   digest.Digest
	nextAt uint64 // commit when ctr reaches this
	lanes  map[string]*witnessLane

	wg sync.WaitGroup

	errMu     sync.Mutex
	lastErr   error
	delivered uint64
	coalesced uint64
	tripped   uint64
}

// Lane breaker tuning: after laneBreakAfter consecutive delivery
// failures a witness lane stops dialing for laneBreakCooldown — a dead
// witness costs one timed-out dial per cooldown instead of one per
// commitment. Commitments skipped while open are ordinary coalesced
// misses: gossip catch-up covers them.
const (
	laneBreakAfter    = 5
	laneBreakCooldown = 2 * time.Second
)

// witnessLane is one witness's delivery worker state: a single-slot
// latest-wins mailbox plus a delivery breaker.
type witnessLane struct {
	name string
	dial DialFunc

	mu      sync.Mutex
	pending *SubmitRequest // latest-wins; overwritten, never queued deeper
	busy    bool           // a drain worker is running
	fails   int            // consecutive delivery failures
	openTil time.Time      // breaker-open horizon; zero = closed
}

// NewPublisher creates a publisher for the given identity. every is
// the commitment cadence in operations (0 = DefaultCommitEvery).
func NewPublisher(id *Identity, every uint64) *Publisher {
	if every == 0 {
		every = DefaultCommitEvery
	}
	return &Publisher{
		id:     id,
		every:  every,
		nextAt: every,
		lanes:  make(map[string]*witnessLane),
	}
}

// Identity returns the publisher's signing identity.
func (p *Publisher) Identity() *Identity { return p.id }

// Align pins the commitment cadence to exact multiples of the cadence
// period instead of "every period since the last commit": the next
// commitment after the one covering ctr lands at the first head past
// ctr-ctr%every+every. Epoch-audit deployments call this with the
// cadence set to the epoch length, so every epoch boundary has a
// signed commitment at (or just past) it and the auditor's per-epoch
// quorum check compares against a root from its own epoch window.
// Call before the first operation.
func (p *Publisher) Align() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aligned = true
}

// AddWitness registers a witness endpoint.
func (p *Publisher) AddWitness(name string, dial DialFunc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lanes[name] = &witnessLane{name: name, dial: dial}
}

// OpApplied is the server-side hook: call it with the database head
// after each applied operation. Heads must be consistent (vdb.DB.Head)
// but need not be strictly ordered across callers — a stale head is
// simply skipped by the cadence gate.
func (p *Publisher) OpApplied(ctr uint64, root digest.Digest) {
	p.mu.Lock()
	if ctr < p.nextAt {
		p.mu.Unlock()
		return
	}
	c := p.commitLocked(ctr, root)
	p.mu.Unlock()
	p.fanOut(c)
}

// CommitNow signs and publishes a commitment at the given head
// immediately, regardless of cadence — used at checkpoint boundaries
// and by tests. It does not wait for delivery; use Flush.
func (p *Publisher) CommitNow(ctr uint64, root digest.Digest) {
	p.mu.Lock()
	c := p.commitLocked(ctr, root)
	p.mu.Unlock()
	p.fanOut(c)
}

func (p *Publisher) commitLocked(ctr uint64, root digest.Digest) *SubmitRequest {
	p.seq++
	c := p.id.Commit(p.seq, ctr, root, p.prev)
	p.prev = root
	if p.aligned {
		// Next boundary strictly past ctr: commitments track the
		// epoch grid rather than drifting by the offset of whatever
		// head happened to trip the previous commit.
		p.nextAt = ctr - ctr%p.every + p.every
	} else {
		p.nextAt = ctr + p.every
	}
	return &SubmitRequest{Commit: c, Pub: append([]byte(nil), p.id.Public()...)}
}

// fanOut offers one commitment to every witness lane, best-effort,
// off the caller's goroutine. A busy lane coalesces: the new
// commitment replaces whatever was waiting (latest wins), so a slow
// witness receives the freshest root instead of a backlog. A witness
// that misses commitments catches up by gossip.
func (p *Publisher) fanOut(req *SubmitRequest) {
	p.mu.Lock()
	lanes := make([]*witnessLane, 0, len(p.lanes))
	for _, l := range p.lanes {
		lanes = append(lanes, l)
	}
	p.mu.Unlock()
	for _, l := range lanes {
		p.offer(l, req)
	}
}

// offer hands req to lane l: starts a drain worker if the lane is
// idle, otherwise drops it in the one-slot mailbox (displacing — and
// counting — any commitment already waiting there).
func (p *Publisher) offer(l *witnessLane, req *SubmitRequest) {
	l.mu.Lock()
	if l.busy {
		if l.pending != nil {
			p.noteCoalesced()
		}
		l.pending = req
		l.mu.Unlock()
		return
	}
	l.busy = true
	l.mu.Unlock()
	p.wg.Add(1)
	go p.drain(l, req)
}

// drain is a lane's delivery worker: deliver req, then whatever
// accumulated in the mailbox meanwhile, until the mailbox is empty.
// At most one drain per lane runs at a time.
func (p *Publisher) drain(l *witnessLane, req *SubmitRequest) {
	defer p.wg.Done()
	for {
		l.mu.Lock()
		open := !l.openTil.IsZero() && time.Now().Before(l.openTil)
		l.mu.Unlock()
		if open {
			// Lane breaker open: skip the dial entirely; the witness
			// catches up by gossip when it returns.
			p.noteCoalesced()
		} else if err := deliver(l.dial, req); err != nil {
			p.noteErr(fmt.Errorf("publish to %s: %w", l.name, err))
			l.mu.Lock()
			l.fails++
			if l.fails >= laneBreakAfter {
				l.openTil = time.Now().Add(laneBreakCooldown)
				l.fails = 0
				p.noteTripped()
			}
			l.mu.Unlock()
		} else {
			l.mu.Lock()
			l.fails = 0
			l.openTil = time.Time{}
			l.mu.Unlock()
			p.noteDelivered()
		}
		l.mu.Lock()
		req, l.pending = l.pending, nil
		if req == nil {
			l.busy = false
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
	}
}

func deliver(dial DialFunc, req any) error {
	caller, err := dial()
	if err != nil {
		return err
	}
	defer caller.Close()
	_, err = caller.Call(req)
	return err
}

func (p *Publisher) noteErr(err error) {
	p.errMu.Lock()
	p.lastErr = err
	p.errMu.Unlock()
}

func (p *Publisher) noteDelivered() {
	p.errMu.Lock()
	p.delivered++
	p.errMu.Unlock()
}

func (p *Publisher) noteCoalesced() {
	p.errMu.Lock()
	p.coalesced++
	p.errMu.Unlock()
}

func (p *Publisher) noteTripped() {
	p.errMu.Lock()
	p.tripped++
	p.errMu.Unlock()
}

// FanoutStats reports the rate-limited fan-out's counters: delivered
// commitments, skipped ones (displaced by a fresher commitment in a
// busy lane, or suppressed while a lane breaker was open), and how
// many times a lane breaker tripped.
func (p *Publisher) FanoutStats() (delivered, skipped, tripped uint64) {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.delivered, p.coalesced, p.tripped
}

// LaneStates snapshots each witness lane's delivery-breaker state
// ("ok" or "open"), for the -stats-addr debug endpoint.
func (p *Publisher) LaneStates() map[string]string {
	p.mu.Lock()
	lanes := make([]*witnessLane, 0, len(p.lanes))
	for _, l := range p.lanes {
		lanes = append(lanes, l)
	}
	p.mu.Unlock()
	m := make(map[string]string, len(lanes))
	now := time.Now()
	for _, l := range lanes {
		l.mu.Lock()
		st := "ok"
		if !l.openTil.IsZero() && now.Before(l.openTil) {
			st = "open"
		}
		l.mu.Unlock()
		m[l.name] = st
	}
	return m
}

// LastErr returns the most recent delivery failure (nil when all
// deliveries so far succeeded). Purely informational: delivery is
// best-effort by design.
func (p *Publisher) LastErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.lastErr
}

// Flush waits for every in-flight delivery to finish. Call before
// asserting on witness state (tests) or before shutting down.
func (p *Publisher) Flush() { p.wg.Wait() }

// ShipSnapshot encodes a checkpoint and delivers it, with a fresh
// commitment over the same head, to every witness synchronously. The
// snapshot must have been cut under a transport freeze (see
// server.CheckpointP2); err aggregates per-witness failures, and the
// shipment counts as delivered if at least one witness accepted —
// the quorum read at promotion time tolerates stragglers.
func (p *Publisher) ShipSnapshot(snap *server.P2Snapshot) error {
	var buf bytes.Buffer
	if err := server.EncodeP2Snapshot(&buf, snap); err != nil {
		return err
	}
	// Re-derive the head from the snapshot itself rather than trusting a
	// caller-supplied pair: the publisher never commits to a head it did
	// not read out of the bytes being shipped.
	srv, _, err := server.RestoreP2(snap)
	if err != nil {
		return err
	}
	ctr, root := srv.DB().Head()
	p.CommitNow(ctr, root)
	put := &SnapshotPut{Server: p.id.Name(), Ctr: ctr, Root: root, Data: buf.Bytes()}

	p.mu.Lock()
	targets := make(map[string]DialFunc, len(p.lanes))
	for name, l := range p.lanes {
		targets[name] = l.dial
	}
	p.mu.Unlock()
	if len(targets) == 0 {
		return errors.New("witness: no witnesses registered to ship snapshot to")
	}
	var errs []error
	delivered := 0
	for name, dial := range targets {
		if err := deliver(dial, put); err != nil {
			errs = append(errs, fmt.Errorf("ship snapshot to %s: %w", name, err))
			continue
		}
		delivered++
	}
	if delivered == 0 {
		return errors.Join(errs...)
	}
	return nil
}
