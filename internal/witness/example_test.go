package witness_test

import (
	"fmt"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/witness"
)

// ExampleLog shows fork conviction: the primary signs two commitments
// that claim different roots for the same position in its stream —
// one per fork branch — and the moment both meet in one witness Log
// (by direct submission or by gossip), Append mints an Evidence
// bundle that anyone can verify offline with nothing but the
// primary's public key.
func ExampleLog() {
	primary, err := witness.NewIdentity("primary")
	if err != nil {
		fmt.Println(err)
		return
	}
	rootA := digest.OfBytes(digest.DomainLeaf, []byte("history shown to group A"))
	rootB := digest.OfBytes(digest.DomainLeaf, []byte("history shown to group B"))

	log := witness.NewLog("primary", primary.Public(), 0)

	// Branch A's commitment arrives first: stored, no conflict yet.
	ev, err := log.Append(primary.Commit(1, 8, rootA, digest.Zero), nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("first branch minted evidence:", ev != nil)

	// Branch B claims the same seq with a different root: equivocation.
	ev, err = log.Append(primary.Commit(1, 8, rootB, digest.Zero), nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("second branch minted evidence:", ev != nil)
	fmt.Println("verifies offline:", ev.Verify() == nil)
	// Output:
	// first branch minted evidence: false
	// second branch minted evidence: true
	// verifies offline: true
}
