// Package baseline implements the two comparison points of the paper's
// evaluation story:
//
//   - Unverified: the trusted-server execution model — no verification
//     objects, no signatures. The performance floor for experiment E7.
//
//   - TokenPassing: the strawman of Section 2.2.3 — the single-user
//     authenticated-publishing scheme extended to multiple users by
//     forcing updates "only at pre-specified time points and only in a
//     pre-specified order", token-passing style, with a signed null
//     record when a user has nothing to do. It detects deviations but
//     drastically violates workload preservation: a user wanting two
//     back-to-back operations must wait for every other user's turn
//     (experiment E6).
package baseline

import (
	"errors"
	"fmt"

	"trustedcvs/internal/core"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/merkle"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// Unverified is a Doer that applies operations with no verification —
// exactly what a client of a *trusted* CVS server does.
type Unverified struct {
	db *vdb.DB
}

// NewUnverified wraps db.
func NewUnverified(db *vdb.DB) *Unverified { return &Unverified{db: db} }

// Do implements the Doer pattern.
func (u *Unverified) Do(op vdb.Op) (any, error) {
	ansBytes, err := u.db.ApplyPlain(op)
	if err != nil {
		return nil, err
	}
	return vdb.DecodeAnswer(ansBytes)
}

// TokenServer is the untrusted server of the token-passing scheme. It
// stores the full turn log; users replay and verify the suffix they
// missed when their turn comes around.
type TokenServer struct {
	db  *vdb.DB
	log []*storedTurn
}

// storedTurn is one turn as stored on the server: the operation
// performed (possibly a NopOp), its answer and VO, and the acting
// user's signature over the resulting state h(M(D′)‖seq).
type storedTurn struct {
	seq    uint64
	user   sig.UserID
	op     vdb.Op
	answer []byte
	vo     *merkle.VO
	sig    sig.Signature
}

// NewTokenServer wraps db for token passing.
func NewTokenServer(db *vdb.DB) *TokenServer { return &TokenServer{db: db} }

// Turn applies the operation of the scheduled user, appends the signed
// record, and returns the answer bytes plus the record sequence.
func (s *TokenServer) Turn(user sig.UserID, op vdb.Op, signTurn func(newRoot digest.Digest, seq uint64) sig.Signature) ([]byte, uint64, error) {
	seq := uint64(len(s.log)) + 1
	ans, vo, err := s.db.Apply(op)
	if err != nil {
		return nil, 0, err
	}
	s.log = append(s.log, &storedTurn{
		seq:    seq,
		user:   user,
		op:     op,
		answer: ans,
		vo:     vo,
		sig:    signTurn(s.db.Root(), seq),
	})
	return ans, seq, nil
}

// Since returns the stored turns with sequence > cursor.
func (s *TokenServer) Since(cursor uint64) []*storedTurn {
	if cursor >= uint64(len(s.log)) {
		return nil
	}
	return s.log[cursor:]
}

// TokenUser is one participant of the token-passing scheme. Its state
// is its trusted root plus a log cursor.
type TokenUser struct {
	signer *sig.Signer
	ring   *sig.Ring
	users  []sig.UserID
	root   digest.Digest
	cursor uint64
	turns  uint64
}

// NewTokenUser creates a participant. initialRoot is common knowledge.
func NewTokenUser(signer *sig.Signer, ring *sig.Ring, initialRoot digest.Digest) *TokenUser {
	return &TokenUser{signer: signer, ring: ring, users: ring.Users(), root: initialRoot}
}

// ID returns the user's identity.
func (u *TokenUser) ID() sig.UserID { return u.signer.ID() }

// ScheduledUser returns whose turn a given sequence number is: turns
// cycle through the users in ID order.
func (u *TokenUser) ScheduledUser(seq uint64) sig.UserID {
	return u.users[int((seq-1)%uint64(len(u.users)))]
}

// TakeTurn catches up on the log (verifying every intermediate turn's
// signature and VO against the chained root) and then performs op —
// which must be this user's scheduled slot. op may be nil, in which
// case a NopOp ("a signature of a null message") is stored.
func (u *TokenUser) TakeTurn(srv *TokenServer, op vdb.Op) (any, error) {
	if err := u.CatchUp(srv); err != nil {
		return nil, err
	}
	next := uint64(len(srv.log)) + 1
	if sched := u.ScheduledUser(next); sched != u.ID() {
		return nil, fmt.Errorf("baseline: turn %d belongs to %v, not %v", next, sched, u.ID())
	}
	if op == nil {
		op = &vdb.NopOp{}
	}
	ans, seq, err := srv.Turn(u.ID(), op, func(newRoot digest.Digest, seq uint64) sig.Signature {
		return u.signer.Sign(core.StateHash(newRoot, seq))
	})
	if err != nil {
		return nil, err
	}
	// Verify own turn like any other.
	if err := u.verifyTurn(srv.log[seq-1]); err != nil {
		return nil, err
	}
	u.turns++
	return vdb.DecodeAnswer(ans)
}

// CatchUp verifies all turns this user has not yet seen.
func (u *TokenUser) CatchUp(srv *TokenServer) error {
	for _, turn := range srv.Since(u.cursor) {
		if err := u.verifyTurn(turn); err != nil {
			return err
		}
	}
	return nil
}

// verifyTurn checks one stored turn against the user's chained root:
// the VO must extend u.root, the answer must replay, the scheduled
// user must match, and the signature must cover the new state.
func (u *TokenUser) verifyTurn(turn *storedTurn) error {
	fail := func(class core.DetectionClass, err error) error {
		return core.Detect(class, u.ID(), u.turns, err)
	}
	if turn.seq != u.cursor+1 {
		return fail(core.ProtocolViolation, fmt.Errorf("turn %d after cursor %d", turn.seq, u.cursor))
	}
	if sched := u.ScheduledUser(turn.seq); sched != turn.user {
		return fail(core.ProtocolViolation, fmt.Errorf("turn %d by %v, scheduled %v", turn.seq, turn.user, sched))
	}
	newRoot, err := vdb.Verify(turn.op, turn.answer, turn.vo, u.root)
	if err != nil {
		if errors.Is(err, vdb.ErrAnswerMismatch) {
			return fail(core.BadAnswer, err)
		}
		return fail(core.BadVO, err)
	}
	if err := u.ring.Verify(turn.user, core.StateHash(newRoot, turn.seq), turn.sig); err != nil {
		return fail(core.BadSignature, err)
	}
	u.root = newRoot
	u.cursor = turn.seq
	return nil
}

// WaitForSecondOp returns how many turns a user must sit through
// between two of its own operations: the full cycle of other users —
// the workload-preservation violation of Section 2.2.3.
func WaitForSecondOp(nUsers int) int { return nUsers - 1 }
