package baseline

import (
	"fmt"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

func put(k, v string) vdb.Op { return &vdb.WriteOp{Puts: []vdb.KV{{Key: k, Val: []byte(v)}}} }
func get(k string) vdb.Op    { return &vdb.ReadOp{Keys: []string{k}} }

func TestUnverified(t *testing.T) {
	db := vdb.New(0)
	u := NewUnverified(db)
	if _, err := u.Do(put("a", "1")); err != nil {
		t.Fatal(err)
	}
	ans, err := u.Do(get("a"))
	if err != nil {
		t.Fatal(err)
	}
	if ra := ans.(vdb.ReadAnswer); string(ra.Results[0].Val) != "1" {
		t.Fatalf("read: %+v", ra)
	}
	if db.Ctr() != 2 {
		t.Fatalf("ctr = %d", db.Ctr())
	}
}

func tokenSetup(t *testing.T, n int) (*TokenServer, []*TokenUser) {
	t.Helper()
	signers, ring, err := sig.DeterministicSigners(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	db := vdb.New(0)
	srv := NewTokenServer(db)
	users := make([]*TokenUser, n)
	for i := range users {
		users[i] = NewTokenUser(signers[i], ring, db.Root())
	}
	return srv, users
}

func TestTokenPassingHonest(t *testing.T) {
	srv, users := tokenSetup(t, 3)
	// Three full cycles; user 0 writes, others pass null turns or read.
	for cycle := 0; cycle < 3; cycle++ {
		if _, err := users[0].TakeTurn(srv, put("f", fmt.Sprintf("v%d", cycle))); err != nil {
			t.Fatalf("cycle %d user 0: %v", cycle, err)
		}
		if _, err := users[1].TakeTurn(srv, nil); err != nil {
			t.Fatalf("cycle %d user 1: %v", cycle, err)
		}
		ans, err := users[2].TakeTurn(srv, get("f"))
		if err != nil {
			t.Fatalf("cycle %d user 2: %v", cycle, err)
		}
		if ra := ans.(vdb.ReadAnswer); string(ra.Results[0].Val) != fmt.Sprintf("v%d", cycle) {
			t.Fatalf("cycle %d read: %+v", cycle, ra)
		}
	}
}

func TestTokenPassingOutOfTurnRejected(t *testing.T) {
	srv, users := tokenSetup(t, 3)
	if _, err := users[1].TakeTurn(srv, put("a", "1")); err == nil {
		t.Fatal("user 1 must not act on user 0's turn")
	}
}

func TestTokenPassingBackToBackCostsFullCycle(t *testing.T) {
	// The workload-preservation violation: for user 0 to perform two
	// operations, every other user must take a turn in between.
	srv, users := tokenSetup(t, 4)
	if _, err := users[0].TakeTurn(srv, put("a", "1")); err != nil {
		t.Fatal(err)
	}
	// Immediately again: rejected.
	if _, err := users[0].TakeTurn(srv, put("a", "2")); err == nil {
		t.Fatal("back-to-back turn must be rejected")
	}
	waits := 0
	for u := 1; u < 4; u++ {
		if _, err := users[u].TakeTurn(srv, nil); err != nil {
			t.Fatal(err)
		}
		waits++
	}
	if waits != WaitForSecondOp(4) {
		t.Fatalf("waited %d turns, model says %d", waits, WaitForSecondOp(4))
	}
	if _, err := users[0].TakeTurn(srv, put("a", "2")); err != nil {
		t.Fatalf("after full cycle: %v", err)
	}
}

func TestTokenPassingDetectsTamper(t *testing.T) {
	srv, users := tokenSetup(t, 2)
	if _, err := users[0].TakeTurn(srv, put("a", "true")); err != nil {
		t.Fatal(err)
	}
	// Server tampers with the stored answer of turn 1 before user 1
	// catches up.
	forged, _ := vdb.EncodeAnswer(vdb.WriteAnswer{Put: 99})
	srv.log[0].answer = forged
	err := users[1].CatchUp(srv)
	if de, ok := core.AsDetection(err); !ok || de.Class != core.BadAnswer {
		t.Fatalf("want BadAnswer, got %v", err)
	}
}

func TestTokenPassingDetectsDroppedTurn(t *testing.T) {
	srv, users := tokenSetup(t, 2)
	if _, err := users[0].TakeTurn(srv, put("a", "1")); err != nil {
		t.Fatal(err)
	}
	if _, err := users[1].TakeTurn(srv, nil); err != nil {
		t.Fatal(err)
	}
	// Server silently drops turn 2 from the log it shows user 0.
	srv.log = srv.log[:1]
	// User 0's next turn: it expects seq 2 to be its... turn 3 is
	// user 0's (cycle of 2). With turn 2 dropped, the server's next
	// seq is 2, which is scheduled for user 1 — user 0 cannot act, and
	// the schedule mismatch surfaces immediately.
	if _, err := users[0].TakeTurn(srv, put("a", "2")); err == nil {
		t.Fatal("dropped turn must break the schedule")
	}
}

func TestTokenPassingDetectsBadSignature(t *testing.T) {
	srv, users := tokenSetup(t, 2)
	if _, err := users[0].TakeTurn(srv, put("a", "1")); err != nil {
		t.Fatal(err)
	}
	srv.log[0].sig[0] ^= 0xFF
	err := users[1].CatchUp(srv)
	if de, ok := core.AsDetection(err); !ok || de.Class != core.BadSignature {
		t.Fatalf("want BadSignature, got %v", err)
	}
}
