package sig

import (
	"testing"

	"trustedcvs/internal/digest"
)

func testSigners(t *testing.T, n int) ([]*Signer, *Ring) {
	t.Helper()
	signers, ring, err := DeterministicSigners(n, 1)
	if err != nil {
		t.Fatalf("DeterministicSigners: %v", err)
	}
	return signers, ring
}

func TestSignVerify(t *testing.T) {
	signers, ring := testSigners(t, 3)
	d := digest.OfBytes(digest.DomainState, []byte("state"))
	s := signers[1].Sign(d)
	if err := ring.Verify(1, d, s); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyWrongUser(t *testing.T) {
	signers, ring := testSigners(t, 3)
	d := digest.OfBytes(digest.DomainState, []byte("state"))
	s := signers[1].Sign(d)
	if err := ring.Verify(2, d, s); err == nil {
		t.Fatal("signature attributed to wrong user must not verify")
	}
}

func TestVerifyWrongDigest(t *testing.T) {
	signers, ring := testSigners(t, 1)
	d := digest.OfBytes(digest.DomainState, []byte("state"))
	s := signers[0].Sign(d)
	other := digest.OfBytes(digest.DomainState, []byte("forged"))
	if err := ring.Verify(0, other, s); err == nil {
		t.Fatal("signature over different digest must not verify")
	}
}

func TestVerifyTamperedSignature(t *testing.T) {
	signers, ring := testSigners(t, 1)
	d := digest.OfBytes(digest.DomainState, []byte("state"))
	s := signers[0].Sign(d)
	s[0] ^= 0xFF
	if err := ring.Verify(0, d, s); err == nil {
		t.Fatal("tampered signature must not verify")
	}
}

func TestUnknownUser(t *testing.T) {
	_, ring := testSigners(t, 1)
	d := digest.OfBytes(digest.DomainState, []byte("state"))
	if err := ring.Verify(99, d, nil); err == nil {
		t.Fatal("unknown user must be rejected")
	}
}

func TestGenesisReserved(t *testing.T) {
	if _, err := NewSigner(GenesisID); err == nil {
		t.Fatal("GenesisID must not be able to sign")
	}
	r := NewRing()
	if err := r.Add(GenesisID, nil); err == nil {
		t.Fatal("GenesisID must not be registrable")
	}
}

func TestRingConflict(t *testing.T) {
	signers, _ := testSigners(t, 2)
	r := NewRing()
	if err := r.Add(0, signers[0].Public()); err != nil {
		t.Fatalf("first Add: %v", err)
	}
	// Re-adding the same key is fine (idempotent).
	if err := r.Add(0, signers[0].Public()); err != nil {
		t.Fatalf("idempotent Add: %v", err)
	}
	// Substituting a different key for the same user must fail.
	if err := r.Add(0, signers[1].Public()); err == nil {
		t.Fatal("key substitution must be rejected")
	}
}

func TestUsersSorted(t *testing.T) {
	signers, _ := testSigners(t, 5)
	r := NewRing(signers[3], signers[0], signers[4], signers[1], signers[2])
	ids := r.Users()
	if len(ids) != 5 {
		t.Fatalf("Users() = %v, want 5 entries", ids)
	}
	for i, id := range ids {
		if id != UserID(i) {
			t.Fatalf("Users() = %v, want ascending 0..4", ids)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", r.Len())
	}
}

func TestDeterministicSignersStable(t *testing.T) {
	a, _, err := DeterministicSigners(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := DeterministicSigners(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !a[0].Public().Equal(b[0].Public()) || !a[1].Public().Equal(b[1].Public()) {
		t.Fatal("same seed must produce same keys")
	}
	c, _, err := DeterministicSigners(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Public().Equal(c[0].Public()) {
		t.Fatal("different seeds must produce different keys")
	}
}

func TestUserIDString(t *testing.T) {
	if got := UserID(3).String(); got != "user(3)" {
		t.Errorf("UserID(3).String() = %q", got)
	}
	if got := GenesisID.String(); got != "user(genesis)" {
		t.Errorf("GenesisID.String() = %q", got)
	}
}
