// Package sig provides the digital-signature substrate for Trusted CVS.
//
// The paper assumes "the existence of a public key infrastructure, for
// example as in [RFC 2459]"; the only property any protocol relies on
// is that a signature by user i over a message cannot be forged by the
// server. We substitute Ed25519 key pairs distributed out of band via a
// Ring (see DESIGN.md §4). Protocol I signs database states; Protocol
// III signs epoch summaries.
package sig

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	//lint:ignore randsource used only by DeterministicSigners for test/bench keys; production keys come from crypto/rand via NewSigner
	mrand "math/rand"
	"sort"

	"trustedcvs/internal/digest"
)

// UserID identifies a user (agent) in the system. The server is not a
// user and has no ID. GenesisID tags the initial database state in the
// Protocol II/III state graph; no real user may use it.
type UserID uint32

// GenesisID is the reserved pseudo-user that "performed" the transition
// into the initial state D0.
const GenesisID UserID = 0xFFFFFFFF

func (u UserID) String() string {
	if u == GenesisID {
		return "user(genesis)"
	}
	return fmt.Sprintf("user(%d)", u)
}

// Signature is a detached Ed25519 signature.
type Signature []byte

// Signer holds a user's private key and can sign digests.
type Signer struct {
	id   UserID
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewSigner generates a fresh key pair for the given user using
// crypto/rand.
func NewSigner(id UserID) (*Signer, error) {
	return NewSignerFrom(id, rand.Reader)
}

// NewSignerFrom generates a key pair from the given entropy source.
// Tests and deterministic simulations pass a seeded reader.
func NewSignerFrom(id UserID, r io.Reader) (*Signer, error) {
	if id == GenesisID {
		return nil, errors.New("sig: GenesisID is reserved and cannot sign")
	}
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("sig: generate key for %v: %w", id, err)
	}
	return &Signer{id: id, priv: priv, pub: pub}, nil
}

// ID returns the signer's user ID.
func (s *Signer) ID() UserID { return s.id }

// Public returns the signer's public key.
func (s *Signer) Public() ed25519.PublicKey { return s.pub }

// Sign signs a digest.
func (s *Signer) Sign(d digest.Digest) Signature {
	return Signature(ed25519.Sign(s.priv, d[:]))
}

// Ring is the public-key directory: every user's public key, known to
// all users (and to the server, which gains nothing from it). It stands
// in for the paper's PKI.
type Ring struct {
	keys map[UserID]ed25519.PublicKey
}

// NewRing builds a ring from the given signers' public halves.
func NewRing(signers ...*Signer) *Ring {
	r := &Ring{keys: make(map[UserID]ed25519.PublicKey, len(signers))}
	for _, s := range signers {
		r.keys[s.id] = s.pub
	}
	return r
}

// Add registers a public key for a user. It returns an error if the
// user already has a different key (key substitution is exactly the
// attack a PKI exists to prevent).
func (r *Ring) Add(id UserID, pub ed25519.PublicKey) error {
	if id == GenesisID {
		return errors.New("sig: cannot register a key for GenesisID")
	}
	if old, ok := r.keys[id]; ok && !old.Equal(pub) {
		return fmt.Errorf("sig: conflicting key registration for %v", id)
	}
	if r.keys == nil {
		r.keys = make(map[UserID]ed25519.PublicKey)
	}
	r.keys[id] = pub
	return nil
}

// Users returns the registered user IDs in ascending order.
func (r *Ring) Users() []UserID {
	ids := make([]UserID, 0, len(r.keys))
	for id := range r.keys {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len returns the number of registered users.
func (r *Ring) Len() int { return len(r.keys) }

// ErrUnknownUser is returned when verifying a signature attributed to a
// user with no registered key.
var ErrUnknownUser = errors.New("sig: unknown user")

// ErrBadSignature is returned when a signature does not verify. In
// protocol terms this means the sig the server presented is not
// "legitimate" (Protocol I, step 4) and the server has deviated.
var ErrBadSignature = errors.New("sig: signature verification failed")

// Verify checks that sig is user id's signature over d.
func (r *Ring) Verify(id UserID, d digest.Digest, s Signature) error {
	pub, ok := r.keys[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownUser, id)
	}
	if !ed25519.Verify(pub, d[:], s) {
		return fmt.Errorf("%w: by %v over %s", ErrBadSignature, id, d.Short())
	}
	return nil
}

// DeterministicSigners generates n signers with IDs 0..n-1 from a
// seeded PRNG. Only for tests, simulations and benchmarks — never for
// production keys.
func DeterministicSigners(n int, seed int64) ([]*Signer, *Ring, error) {
	rng := mrand.New(mrand.NewSource(seed))
	signers := make([]*Signer, n)
	for i := range signers {
		s, err := NewSignerFrom(UserID(i), rng)
		if err != nil {
			return nil, nil, err
		}
		signers[i] = s
	}
	return signers, NewRing(signers...), nil
}
