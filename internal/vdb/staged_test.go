package vdb

import (
	"fmt"
	"sync"
	"testing"
)

// TestBeginFinishMatchesApply pins the pipelined path to the
// sequential one: for the same operation sequence, Begin+Finish must
// produce byte-identical answers, verifiable VOs, and the same final
// root as Apply.
func TestBeginFinishMatchesApply(t *testing.T) {
	seq := New(0)
	pip := New(0)
	for i := 0; i < 50; i++ {
		op := &WriteOp{Puts: []KV{{Key: fmt.Sprintf("k%03d", i%17), Val: []byte(fmt.Sprintf("v%d", i))}}}

		wantRoot := seq.Root()
		wantAns, wantVO, err := seq.Apply(op)
		if err != nil {
			t.Fatal(err)
		}

		gotRoot := pip.Root()
		st, err := pip.Begin(op)
		if err != nil {
			t.Fatal(err)
		}
		gotAns, gotVO, err := st.Finish()
		if err != nil {
			t.Fatal(err)
		}

		if string(wantAns) != string(gotAns) {
			t.Fatalf("op %d: answers differ", i)
		}
		if st.PreCtr() != uint64(i) {
			t.Fatalf("op %d: preCtr %d", i, st.PreCtr())
		}
		old, nw, err := VerifyDerive(op, gotAns, gotVO)
		if err != nil {
			t.Fatalf("op %d: staged VO does not verify: %v", i, err)
		}
		if old != gotRoot || nw != pip.Root() {
			t.Fatalf("op %d: staged VO derives wrong roots", i)
		}
		wold, wnew, err := VerifyDerive(op, wantAns, wantVO)
		if err != nil {
			t.Fatal(err)
		}
		if wold != wantRoot || wnew != seq.Root() || wnew != nw {
			t.Fatalf("op %d: sequential/pipelined roots diverge", i)
		}
	}
	if seq.Ctr() != pip.Ctr() || seq.Root() != pip.Root() {
		t.Fatal("final states diverge")
	}
}

// TestFinishConcurrentWithBegin runs Finish for earlier operations
// while later Begins mutate the database — the exact overlap the
// pipelined server creates. Every staged VO must still verify against
// the root that was current when its Begin ran. Run under -race.
func TestFinishConcurrentWithBegin(t *testing.T) {
	db := New(0)
	for i := 0; i < 500; i++ {
		op := &WriteOp{Puts: []KV{{Key: fmt.Sprintf("seed%04d", i), Val: []byte("x")}}}
		if err := db.Preload(op); err != nil {
			t.Fatal(err)
		}
	}

	type staged struct {
		op  Op
		pre [32]byte
		st  *Staged
	}
	const ops = 200
	pending := make(chan staged, ops)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // verifier goroutine: finishes and verifies concurrently
		defer wg.Done()
		for s := range pending {
			ans, vo, err := s.st.Finish()
			if err != nil {
				t.Error(err)
				return
			}
			old, _, err := VerifyDerive(s.op, ans, vo)
			if err != nil {
				t.Error(err)
				return
			}
			if old != s.pre {
				t.Errorf("ctr %d: VO pre-root drifted", s.st.PreCtr())
				return
			}
		}
	}()
	for i := 0; i < ops; i++ {
		pre := db.Root()
		op := &WriteOp{Puts: []KV{{Key: fmt.Sprintf("seed%04d", (i*31)%500), Val: []byte(fmt.Sprintf("u%d", i))}}}
		st, err := db.Begin(op)
		if err != nil {
			t.Fatal(err)
		}
		pending <- staged{op: op, pre: pre, st: st}
	}
	close(pending)
	wg.Wait()
}
