package vdb

import (
	"fmt"

	"trustedcvs/internal/digest"
)

// Session is a fully verified single-user session against a local DB:
// it keeps the client-side trusted root digest and checks every
// operation's VO, answer, and root transition. This is exactly the
// single-user authenticated-publishing scheme the paper builds on
// (Section 2.2.3, citing [2]) — sufficient alone only when there is
// one user, and the building block the multi-user protocols extend.
//
// Session implements the Doer pattern used by internal/cvs.
type Session struct {
	db   *DB
	root digest.Digest
}

// NewSession opens a verified session on db. The client must know the
// current root (for a fresh database that is digest.Empty(), "common
// knowledge" in the paper's initialization).
func NewSession(db *DB) *Session {
	return &Session{db: db, root: db.Root()}
}

// Root returns the client-side trusted root digest.
func (s *Session) Root() digest.Digest { return s.root }

// Do applies op on the server and verifies the transition before
// adopting the new root.
func (s *Session) Do(op Op) (any, error) {
	ansBytes, vo, err := s.db.Apply(op)
	if err != nil {
		return nil, err
	}
	newRoot, err := Verify(op, ansBytes, vo, s.root)
	if err != nil {
		return nil, fmt.Errorf("vdb: session verification: %w", err)
	}
	s.root = newRoot
	ans, err := DecodeAnswer(ansBytes)
	if err != nil {
		return nil, err
	}
	return ans, nil
}
