// Package vdb implements the paper's "database of data items" (Section
// 2.1): an authenticated key-value database on which every CVS
// operation is modeled as a deterministic transaction.
//
// The central abstraction is Op: a deterministic, wire-encodable state
// transition. The server applies an Op to its Merkle tree while
// recording every node touched, producing (answer, verification
// object, ctr). The client *replays the same Op* on the pruned
// pre-state shipped in the VO — recomputing the old root digest, the
// answer, and the new root digest independently. Anything the server
// lied about (the answer, the pre-state, the post-state) surfaces as a
// typed verification error. This generalizes the paper's v(Q, D) from
// single-key updates to arbitrary deterministic transactions, which is
// what lets the CVS layer make commits atomic.
//
// Since PR 6 the database is a Merkle *forest*: N shards, each with
// its own tree, counter, and mutex, folded into a single root-of-roots
// (see forest.go). A one-shard forest is bit-compatible with the
// original single-tree database — same root, same counter, same wire
// messages, same snapshots — so everything above vdb can stay
// N-oblivious.
package vdb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/merkle"
)

// ErrAnswerMismatch is returned when the server's claimed answer
// differs from the answer obtained by replaying the operation — an
// integrity violation.
var ErrAnswerMismatch = errors.New("vdb: answer does not match verified replay")

// ErrNewRootMismatch is returned when the server's claimed new root
// digest differs from the replayed one.
var ErrNewRootMismatch = errors.New("vdb: new root digest does not match verified replay")

// A Tx gives an Op read/write access to the database state during
// Apply. The same Tx type fronts the server's recording tree and the
// client's pruned replay tree, guaranteeing both sides run identical
// code.
type Tx struct {
	rec  *merkle.Recording // server side (recording); nil on replay
	tree *merkle.Tree      // client side (replay); nil on server
}

// Get reads a key.
func (tx *Tx) Get(key string) ([]byte, bool, error) {
	if tx.rec != nil {
		return tx.rec.Get(key)
	}
	v, ok, err := tx.tree.GetErr(key)
	return v, ok, err
}

// Put writes a key. The value is copied.
func (tx *Tx) Put(key string, val []byte) error {
	val = append([]byte(nil), val...)
	if tx.rec != nil {
		return tx.rec.Put(key, val)
	}
	nt, err := tx.tree.PutErr(key, val)
	if err != nil {
		return err
	}
	tx.tree = nt
	return nil
}

// Delete removes a key, reporting whether it existed.
func (tx *Tx) Delete(key string) (bool, error) {
	if tx.rec != nil {
		return tx.rec.Delete(key)
	}
	nt, found, err := tx.tree.DeleteErr(key)
	if err != nil {
		return false, err
	}
	tx.tree = nt
	return found, nil
}

// Range scans keys in [lo, hi) in order ("" hi = unbounded).
func (tx *Tx) Range(lo, hi string, fn func(key string, val []byte) bool) error {
	if tx.rec != nil {
		return tx.rec.Range(lo, hi, fn)
	}
	return tx.tree.Range(lo, hi, fn)
}

// An Op is a deterministic transaction. Apply must depend only on the
// Op's fields and the Tx state: no clocks, no randomness, no maps
// iterated in answer order. The returned answer must be gob-encodable
// and deterministic (use slices, not maps).
//
// Implementations live in this package (ReadOp, WriteOp, RangeOp) and
// in internal/cvs (CommitOp, CheckoutOp, LogOp, ...). Concrete types
// must be registered with gob (internal/wire does this).
type Op interface {
	Apply(tx *Tx) (answer any, err error)
}

// EncodeAnswer canonically encodes an answer for transmission and
// comparison. Answer equality is byte equality of this encoding.
func EncodeAnswer(ans any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ans); err != nil {
		return nil, fmt.Errorf("vdb: encode answer: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeAnswer decodes an answer produced by EncodeAnswer.
func DecodeAnswer(b []byte) (any, error) {
	var ans any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ans); err != nil {
		return nil, fmt.Errorf("vdb: decode answer: %w", err)
	}
	return ans, nil
}

// canonicalAnswer re-encodes untrusted answer bytes in the verifier's
// own process. Gob assigns wire type IDs from a process-global counter,
// so byte streams from different binaries legitimately differ even for
// equal values; decode + local re-encode yields bytes comparable to a
// local EncodeAnswer. Soundness is preserved: what the user consumes is
// the decoded value, and equal decoded values re-encode identically
// within one process.
func canonicalAnswer(b []byte) ([]byte, error) {
	v, err := DecodeAnswer(b)
	if err != nil {
		return nil, err
	}
	return EncodeAnswer(v)
}

// DB is the server-side authenticated database: a forest of Merkle
// shards plus the global operation counter ctr from Protocol I ("the
// count of the number of operations performed on the database").
//
// DB is safe for concurrent use. Mutations linearize per shard on that
// shard's mutex, whose critical section is deliberately tiny — apply
// the operation to the persistent tree and bump the counters — so the
// cryptographic heavy lifting (VO pruning, answer encoding) runs
// outside it via Begin/Finish, and operations on different shards
// never contend at all. Readers (Ctr, Root, Head, Fork, Snapshot) see
// a consistent published head vector under fmu and never block on an
// in-flight apply.
//
// Lock order: a shard mutex is always acquired before fmu, never
// after; multiple shard mutexes are acquired in ascending shard order.
type DB struct {
	shards []*shard

	// fmu orders forest-level publication: gctr and the published head
	// vector move together under it. gctr equals the sum of the shard
	// counters at every published point (each shard-counter increment
	// publishes exactly one gctr increment).
	fmu   sync.Mutex
	gctr  uint64
	heads []headEntry
}

// New creates an empty single-shard database with the given Merkle
// branching factor (0 = merkle.DefaultOrder). It is exactly the
// pre-forest database: one tree, one counter, one ordered section.
func New(order int) *DB {
	return NewSharded(order, 1)
}

// Ctr returns the number of operations applied so far (across all
// shards).
func (db *DB) Ctr() uint64 {
	db.fmu.Lock()
	defer db.fmu.Unlock()
	return db.gctr
}

// Root returns the current root-of-roots M(D): for a single shard the
// plain tree root, otherwise the DomainForest fold of the per-shard
// heads.
func (db *DB) Root() digest.Digest {
	_, root := db.Head()
	return root
}

// Head returns the operation counter and root-of-roots as one
// consistent pair. Separate Ctr/Root calls can interleave with a
// concurrent Apply and pair a counter with the wrong tree; a
// commitment built from such a torn pair would read as a fork at every
// honest witness.
func (db *DB) Head() (uint64, digest.Digest) {
	db.fmu.Lock()
	gctr := db.gctr
	heads := append([]headEntry(nil), db.heads...)
	db.fmu.Unlock()
	// Digest computation happens outside the lock: the captured trees
	// are persistent and their root digests are memoized.
	return gctr, FoldHeads(shardHeadsOf(heads))
}

// Len returns the number of records across all shards.
func (db *DB) Len() int {
	db.fmu.Lock()
	heads := append([]headEntry(nil), db.heads...)
	db.fmu.Unlock()
	n := 0
	for _, e := range heads {
		n += e.tree.Len()
	}
	return n
}

// Apply executes op, increments ctr, and returns the canonical answer
// encoding plus the verification object for the transition. On error
// the database is unchanged.
//
// Apply performs everything — including answer encoding and VO
// construction — before publishing the transition, which is the right
// shape for sequential callers (simulations, tests, the CLI). The
// pipelined servers use Begin/Finish instead to keep the serialized
// window minimal.
func (db *DB) Apply(op Op) (ansBytes []byte, vo *merkle.VO, err error) {
	sid, err := db.ShardFor(op)
	if err != nil {
		return nil, nil, err
	}
	s := db.shards[sid]
	s.lock()
	defer s.unlock()
	rec := s.tree.Record()
	ans, err := op.Apply(&Tx{rec: rec})
	if err != nil {
		return nil, nil, err
	}
	// Encoding under the lock is what buys Apply its unchanged-on-error
	// contract; pipelined callers use Begin/Finish instead.
	//lint:ignore lockscope sequential convenience path; rollback-on-encode-error requires encoding before publishing
	ansBytes, err = EncodeAnswer(ans)
	if err != nil {
		return nil, nil, err
	}
	s.tree = rec.Tree()
	s.ctr++
	db.publish(sid, s)
	return ansBytes, rec.VO(), nil
}

// publish records a shard's new (tree, ctr) in the head vector and
// bumps gctr, all under fmu. Must be called with the shard's mutex
// held, so the publication order within one shard matches its apply
// order.
func (db *DB) publish(sid int, s *shard) {
	db.fmu.Lock()
	db.gctr++
	db.heads[sid] = headEntry{tree: s.tree, ctr: s.ctr}
	db.fmu.Unlock()
}

// Staged is the committed-but-unencoded result of Begin: the ordered
// section already applied the operation and advanced the counters;
// Finish does the remaining work — canonical answer encoding and VO
// pruning — on the captured immutable snapshot, outside any lock.
type Staged struct {
	shard    int
	preCtr   uint64
	postGctr uint64
	rec      *merkle.Recording
	ans      any
	heads    []headEntry // published head vector; nil on a single-shard DB
}

// Begin routes op to its shard and runs that shard's ordered section.
// See BeginShard; on a single-shard database this is exactly the
// pre-forest Begin.
func (db *DB) Begin(op Op) (*Staged, error) {
	sid, err := db.ShardFor(op)
	if err != nil {
		return nil, err
	}
	return db.BeginShard(sid, op)
}

// BeginShard is the ordered section of the pipelined hot path for one
// shard: it applies op to the shard's persistent tree, bumps the shard
// counter, publishes the new head under fmu, and captures the
// recording — and nothing else. The returned Staged references only
// immutable nodes of the persistent tree, so Finish (and any number of
// other Staged results from earlier or later operations, on this shard
// or any other) can run concurrently with subsequent Begins. On error
// the database is unchanged.
//
// Unlike Apply, a failure to encode the answer surfaces in Finish,
// after the transition is already committed; that only happens for
// answers that are not gob-encodable, which is a bug in the operation,
// not a reachable server state.
func (db *DB) BeginShard(sid int, op Op) (*Staged, error) {
	return db.BeginShardIn(sid, op, nil)
}

// BeginShardIn is BeginShard with a section hook: section (if non-nil)
// runs inside the shard's ordered section, after the operation has
// committed and published, so a caller can swap its own per-shard
// bookkeeping atomically with the counter bump — without stacking a
// second mutex in front of the instrumented one, which would both
// double the lock hand-offs on the hot path and hide the real queueing
// from the shard's contention counters. section must be short; its
// time is accounted as held time. It does not run if the operation
// fails.
func (db *DB) BeginShardIn(sid int, op Op, section func(st *Staged)) (*Staged, error) {
	if sid < 0 || sid >= len(db.shards) {
		return nil, fmt.Errorf("%w: shard %d out of range [0,%d)", ErrBadOp, sid, len(db.shards))
	}
	s := db.shards[sid]
	s.lock()
	rec := s.tree.Record()
	ans, err := op.Apply(&Tx{rec: rec})
	if err != nil {
		s.unlock()
		return nil, err
	}
	st := &Staged{shard: sid, preCtr: s.ctr, rec: rec, ans: ans}
	s.tree = rec.Tree()
	s.ctr++
	db.fmu.Lock()
	db.gctr++
	db.heads[sid] = headEntry{tree: s.tree, ctr: s.ctr}
	st.postGctr = db.gctr
	if len(db.shards) > 1 {
		st.heads = append([]headEntry(nil), db.heads...)
	}
	db.fmu.Unlock()
	if section != nil {
		section(st)
	}
	s.unlock()
	return st, nil
}

// PreCtr returns the shard counter as of the start of the staged
// operation — the value the protocols present to the user.
func (st *Staged) PreCtr() uint64 { return st.preCtr }

// Shard returns the shard the operation ran on.
func (st *Staged) Shard() int { return st.shard }

// PostGctr returns the global operation counter as of the publication
// of this operation.
func (st *Staged) PostGctr() uint64 { return st.postGctr }

// Heads returns the published per-shard head vector as of this
// operation, nil on a single-shard database. Root digests are computed
// here, outside every lock (they are memoized on the persistent
// trees).
func (st *Staged) Heads() []ShardHead { return shardHeadsOf(st.heads) }

// Finish produces the canonical answer encoding and the verification
// object. It is safe to call concurrently with any database activity.
func (st *Staged) Finish() (ansBytes []byte, vo *merkle.VO, err error) {
	ansBytes, err = EncodeAnswer(st.ans)
	if err != nil {
		return nil, nil, err
	}
	return ansBytes, st.rec.VO(), nil
}

// Preload applies op without advancing ctr or building a VO. It
// constructs the initial database state D₀ (which the paper allows to
// be arbitrary, with M(D₀) common knowledge) before any protocol
// starts; it must not be called afterwards. On a sharded database a
// WriteOp is split per shard; any other op must route to one shard.
func (db *DB) Preload(op Op) error {
	parts, err := db.splitPreload(op)
	if err != nil {
		return err
	}
	for sid, part := range parts {
		if part == nil {
			continue
		}
		s := db.shards[sid]
		s.lock()
		tx := &Tx{tree: s.tree}
		if _, err := part.Apply(tx); err != nil {
			s.unlock()
			return err
		}
		s.tree = tx.tree
		db.fmu.Lock()
		db.heads[sid] = headEntry{tree: s.tree, ctr: s.ctr}
		db.fmu.Unlock()
		s.unlock()
	}
	return nil
}

// ApplyPlain executes op without building a verification object — the
// trusted-server execution path, used as the performance floor in the
// workload-preservation experiments (desideratum 3).
func (db *DB) ApplyPlain(op Op) (ansBytes []byte, err error) {
	sid, err := db.ShardFor(op)
	if err != nil {
		return nil, err
	}
	s := db.shards[sid]
	s.lock()
	defer s.unlock()
	tx := &Tx{tree: s.tree}
	ans, err := op.Apply(tx)
	if err != nil {
		return nil, err
	}
	// Deliberately mirrors the seed's fully serialized trusted path so
	// the workload-preservation experiments measure what they claim.
	//lint:ignore lockscope trusted-server baseline must keep the seed's serialized shape for a fair floor
	ansBytes, err = EncodeAnswer(ans)
	if err != nil {
		return nil, err
	}
	s.tree = tx.tree
	s.ctr++
	db.publish(sid, s)
	return ansBytes, nil
}

// Snapshot captures the database (tree structure + operation counters)
// for persistence. The restored database has the identical
// root-of-roots, so a restarted server stays consistent with every
// client's verified state. A single-shard snapshot uses the legacy
// single-tree layout, byte-compatible with pre-forest snapshots.
func (db *DB) Snapshot() *DBSnapshot {
	db.fmu.Lock()
	gctr := db.gctr
	heads := append([]headEntry(nil), db.heads...)
	db.fmu.Unlock()
	// The structural walk happens outside the lock: trees are
	// persistent, so the captured versions never change under us.
	if len(heads) == 1 {
		return &DBSnapshot{Ctr: gctr, Tree: heads[0].tree.Snapshot()}
	}
	out := &DBSnapshot{Ctr: gctr, Shards: make([]ShardSnapshot, len(heads))}
	for i, e := range heads {
		out.Shards[i] = ShardSnapshot{Ctr: e.ctr, Tree: e.tree.Snapshot()}
	}
	return out
}

// DBSnapshot is the persistent form of a DB. Exactly one of Tree
// (single-shard legacy layout) and Shards (forest layout) is set.
type DBSnapshot struct {
	Ctr  uint64
	Tree *merkle.Snapshot
	// Shards is the forest layout (one entry per shard). Empty for
	// single-shard databases, which keeps their snapshots — and
	// everything embedding them — identical to the pre-forest format.
	Shards []ShardSnapshot
}

// ShardSnapshot is the persistent form of one shard.
type ShardSnapshot struct {
	Ctr  uint64
	Tree *merkle.Snapshot
}

// RestoreDB rebuilds a database from a snapshot.
func RestoreDB(s *DBSnapshot) (*DB, error) {
	if s == nil || (s.Tree == nil && len(s.Shards) == 0) {
		return nil, errors.New("vdb: nil snapshot")
	}
	if len(s.Shards) == 0 {
		t, err := merkle.Restore(s.Tree)
		if err != nil {
			return nil, err
		}
		db := newForest(1)
		db.shards[0].tree, db.shards[0].ctr = t, s.Ctr
		db.gctr = s.Ctr
		db.heads[0] = headEntry{tree: t, ctr: s.Ctr}
		return db, nil
	}
	if len(s.Shards) > MaxShards {
		return nil, fmt.Errorf("vdb: snapshot has %d shards, max %d", len(s.Shards), MaxShards)
	}
	db := newForest(len(s.Shards))
	var sum uint64
	for i, ss := range s.Shards {
		if ss.Tree == nil {
			return nil, fmt.Errorf("vdb: snapshot shard %d has nil tree", i)
		}
		t, err := merkle.Restore(ss.Tree)
		if err != nil {
			return nil, fmt.Errorf("vdb: snapshot shard %d: %w", i, err)
		}
		db.shards[i].tree, db.shards[i].ctr = t, ss.Ctr
		db.heads[i] = headEntry{tree: t, ctr: ss.Ctr}
		sum += ss.Ctr
	}
	// Snapshots are untrusted input read back from disk: the forest
	// invariant gctr = Σ shard counters must hold or the file is
	// corrupt (or forged).
	if sum != s.Ctr {
		return nil, fmt.Errorf("vdb: snapshot gctr %d != sum of shard counters %d", s.Ctr, sum)
	}
	db.gctr = s.Ctr
	return db, nil
}

// Fork returns an independent copy of the database sharing structure
// with the original — the primitive the adversary package uses to
// mount the Figure 1 partition attack. Cheap because the trees are
// persistent; the cut is the published head vector, a consistent point
// of the forest order.
func (db *DB) Fork() *DB {
	db.fmu.Lock()
	gctr := db.gctr
	heads := append([]headEntry(nil), db.heads...)
	db.fmu.Unlock()
	out := newForest(len(heads))
	for i, e := range heads {
		out.shards[i].tree, out.shards[i].ctr = e.tree, e.ctr
		out.heads[i] = e
	}
	out.gctr = gctr
	return out
}

// VerifyDerive replays op on the VO's pruned pre-state without a
// prior expectation of the old root: it returns both the old root
// digest *derived from the VO* and the post-state root. The replayed
// answer is checked against the server's claimed answer.
//
// Protocol I authenticates the derived old root with the previous
// user's signature over h(M(D)‖ctr); Protocol II feeds it into the
// XOR registers and authenticates the whole chain at sync time. A
// client that instead tracks its own trusted root (single-user
// setting) uses Verify.
func VerifyDerive(op Op, claimedAns []byte, vo *merkle.VO) (oldRoot, newRoot digest.Digest, err error) {
	oldRoot, newRoot, _, err = VerifyDeriveTree(op, claimedAns, vo)
	return oldRoot, newRoot, err
}

// VerifyDeriveTree is VerifyDerive that additionally returns the
// post-state tree the replay produced. The epoch auditor caches it so
// a directly adjacent next operation by the same user can be replayed
// on it (ReplayOn) without unpacking and re-hashing a fresh VO — the
// "shared path recomputation" of the audit batch.
func VerifyDeriveTree(op Op, claimedAns []byte, vo *merkle.VO) (oldRoot, newRoot digest.Digest, post *merkle.Tree, err error) {
	if vo == nil {
		return digest.Zero, digest.Zero, nil, errors.New("vdb: missing verification object")
	}
	t, err := vo.Tree()
	if err != nil {
		return digest.Zero, digest.Zero, nil, err
	}
	oldRoot = t.RootDigest()
	tx := &Tx{tree: t}
	ans, err := op.Apply(tx)
	if err != nil {
		return digest.Zero, digest.Zero, nil, err
	}
	if err := checkClaim(ans, claimedAns); err != nil {
		return digest.Zero, digest.Zero, nil, err
	}
	return oldRoot, tx.tree.RootDigest(), tx.tree, nil
}

// ReplayOn replays op directly on prev, a post-state tree a prior
// VerifyDeriveTree (or ReplayOn) produced, and checks the claimed
// answer against the replay. It is the audit batch's fast path: when
// the server's claimed pre-counter says this operation directly
// extends the verifier's own last verified state, the pre-state is
// already in hand and the VO need not be unpacked at all. prev is not
// modified (trees are persistent).
//
// prev is pruned to the paths the producing VO covered, so a replay
// touching keys outside that coverage fails with merkle.ErrPruned —
// the caller falls back to the full VO path. An answer mismatch here
// is the same lie it is in VerifyDerive (the claimed answer is not
// what the committed state yields).
func ReplayOn(prev *merkle.Tree, op Op, claimedAns []byte) (newRoot digest.Digest, post *merkle.Tree, err error) {
	tx := &Tx{tree: prev}
	ans, err := op.Apply(tx)
	if err != nil {
		return digest.Zero, nil, err
	}
	if err := checkClaim(ans, claimedAns); err != nil {
		return digest.Zero, nil, err
	}
	return tx.tree.RootDigest(), tx.tree, nil
}

// checkClaim judges the server's claimed answer bytes against a
// locally replayed answer.
func checkClaim(ans any, claimedAns []byte) error {
	got, err := EncodeAnswer(ans)
	if err != nil {
		return err
	}
	// Fast path: when the claimed bytes equal the local encoding of the
	// replayed answer, the claim trivially decodes to the replayed
	// answer — no canonicalization needed. This is the common case
	// (server and verifier encode with the same gob type-ID assignment)
	// and saves a full decode + re-encode per verified operation.
	if !bytes.Equal(got, claimedAns) {
		// Slow path: gob streams from a different process can
		// legitimately differ byte-wise for equal values; canonicalize
		// the claim by decode + local re-encode before judging.
		claimed, err := canonicalAnswer(claimedAns)
		if err != nil {
			return fmt.Errorf("%w (undecodable claim: %v)", ErrAnswerMismatch, err)
		}
		if !bytes.Equal(got, claimed) {
			return ErrAnswerMismatch
		}
	}
	return nil
}

// Verify is the client side for a caller that already trusts a root:
// it replays op on the VO's pruned pre-state, checks the pre-state
// against oldRoot, checks the replayed answer against the server's
// claimed answer, and returns the post-state root digest the client
// computed itself.
//
// Verify enforces the three checks of Section 4.1: the VO is
// consistent with the trusted root, the answer is what the committed
// database yields, and the new root is the correct successor state.
func Verify(op Op, claimedAns []byte, vo *merkle.VO, oldRoot digest.Digest) (newRoot digest.Digest, err error) {
	derivedOld, newRoot, err := VerifyDerive(op, claimedAns, vo)
	if err != nil {
		return digest.Zero, err
	}
	if derivedOld != oldRoot {
		return digest.Zero, fmt.Errorf("%w: VO root %s, trusted root %s",
			merkle.ErrRootMismatch, derivedOld.Short(), oldRoot.Short())
	}
	return newRoot, nil
}
