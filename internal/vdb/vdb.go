// Package vdb implements the paper's "database of data items" (Section
// 2.1): an authenticated key-value database on which every CVS
// operation is modeled as a deterministic transaction.
//
// The central abstraction is Op: a deterministic, wire-encodable state
// transition. The server applies an Op to its Merkle tree while
// recording every node touched, producing (answer, verification
// object, ctr). The client *replays the same Op* on the pruned
// pre-state shipped in the VO — recomputing the old root digest, the
// answer, and the new root digest independently. Anything the server
// lied about (the answer, the pre-state, the post-state) surfaces as a
// typed verification error. This generalizes the paper's v(Q, D) from
// single-key updates to arbitrary deterministic transactions, which is
// what lets the CVS layer make commits atomic.
package vdb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/merkle"
)

// ErrAnswerMismatch is returned when the server's claimed answer
// differs from the answer obtained by replaying the operation — an
// integrity violation.
var ErrAnswerMismatch = errors.New("vdb: answer does not match verified replay")

// ErrNewRootMismatch is returned when the server's claimed new root
// digest differs from the replayed one.
var ErrNewRootMismatch = errors.New("vdb: new root digest does not match verified replay")

// A Tx gives an Op read/write access to the database state during
// Apply. The same Tx type fronts the server's recording tree and the
// client's pruned replay tree, guaranteeing both sides run identical
// code.
type Tx struct {
	rec  *merkle.Recording // server side (recording); nil on replay
	tree *merkle.Tree      // client side (replay); nil on server
}

// Get reads a key.
func (tx *Tx) Get(key string) ([]byte, bool, error) {
	if tx.rec != nil {
		return tx.rec.Get(key)
	}
	v, ok, err := tx.tree.GetErr(key)
	return v, ok, err
}

// Put writes a key. The value is copied.
func (tx *Tx) Put(key string, val []byte) error {
	val = append([]byte(nil), val...)
	if tx.rec != nil {
		return tx.rec.Put(key, val)
	}
	nt, err := tx.tree.PutErr(key, val)
	if err != nil {
		return err
	}
	tx.tree = nt
	return nil
}

// Delete removes a key, reporting whether it existed.
func (tx *Tx) Delete(key string) (bool, error) {
	if tx.rec != nil {
		return tx.rec.Delete(key)
	}
	nt, found, err := tx.tree.DeleteErr(key)
	if err != nil {
		return false, err
	}
	tx.tree = nt
	return found, nil
}

// Range scans keys in [lo, hi) in order ("" hi = unbounded).
func (tx *Tx) Range(lo, hi string, fn func(key string, val []byte) bool) error {
	if tx.rec != nil {
		return tx.rec.Range(lo, hi, fn)
	}
	return tx.tree.Range(lo, hi, fn)
}

// An Op is a deterministic transaction. Apply must depend only on the
// Op's fields and the Tx state: no clocks, no randomness, no maps
// iterated in answer order. The returned answer must be gob-encodable
// and deterministic (use slices, not maps).
//
// Implementations live in this package (ReadOp, WriteOp, RangeOp) and
// in internal/cvs (CommitOp, CheckoutOp, LogOp, ...). Concrete types
// must be registered with gob (internal/wire does this).
type Op interface {
	Apply(tx *Tx) (answer any, err error)
}

// EncodeAnswer canonically encodes an answer for transmission and
// comparison. Answer equality is byte equality of this encoding.
func EncodeAnswer(ans any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ans); err != nil {
		return nil, fmt.Errorf("vdb: encode answer: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeAnswer decodes an answer produced by EncodeAnswer.
func DecodeAnswer(b []byte) (any, error) {
	var ans any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ans); err != nil {
		return nil, fmt.Errorf("vdb: decode answer: %w", err)
	}
	return ans, nil
}

// canonicalAnswer re-encodes untrusted answer bytes in the verifier's
// own process. Gob assigns wire type IDs from a process-global counter,
// so byte streams from different binaries legitimately differ even for
// equal values; decode + local re-encode yields bytes comparable to a
// local EncodeAnswer. Soundness is preserved: what the user consumes is
// the decoded value, and equal decoded values re-encode identically
// within one process.
func canonicalAnswer(b []byte) ([]byte, error) {
	v, err := DecodeAnswer(b)
	if err != nil {
		return nil, err
	}
	return EncodeAnswer(v)
}

// DB is the server-side authenticated database: the Merkle tree plus
// the operation counter ctr from Protocol I ("the count of the number
// of operations performed on the database").
//
// DB is safe for concurrent use. Mutations linearize on an internal
// mutex whose critical section is deliberately tiny — apply the
// operation to the persistent tree and bump ctr — so that the
// cryptographic heavy lifting (VO pruning, answer encoding) can run
// outside it via Begin/Finish. Readers (Ctr, Root, Fork, Snapshot) see
// a consistent (tree, ctr) pair.
type DB struct {
	mu   sync.Mutex
	tree *merkle.Tree
	ctr  uint64
}

// New creates an empty database with the given Merkle branching factor
// (0 = merkle.DefaultOrder).
func New(order int) *DB {
	return &DB{tree: merkle.New(order)}
}

// Ctr returns the number of operations applied so far.
func (db *DB) Ctr() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ctr
}

// Root returns the current root digest M(D).
func (db *DB) Root() digest.Digest {
	db.mu.Lock()
	t := db.tree
	db.mu.Unlock()
	return t.RootDigest()
}

// Head returns the operation counter and root as one consistent pair.
// Separate Ctr/Root calls can interleave with a concurrent Apply and
// pair a counter with the wrong tree; a commitment built from such a
// torn pair would read as a fork at every honest witness.
func (db *DB) Head() (uint64, digest.Digest) {
	db.mu.Lock()
	ctr, t := db.ctr, db.tree
	db.mu.Unlock()
	return ctr, t.RootDigest()
}

// Len returns the number of records.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tree.Len()
}

// Apply executes op, increments ctr, and returns the canonical answer
// encoding plus the verification object for the transition. On error
// the database is unchanged.
//
// Apply performs everything — including answer encoding and VO
// construction — before publishing the transition, which is the right
// shape for sequential callers (simulations, tests, the CLI). The
// pipelined servers use Begin/Finish instead to keep the serialized
// window minimal.
func (db *DB) Apply(op Op) (ansBytes []byte, vo *merkle.VO, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec := db.tree.Record()
	ans, err := op.Apply(&Tx{rec: rec})
	if err != nil {
		return nil, nil, err
	}
	// Encoding under the lock is what buys Apply its unchanged-on-error
	// contract; pipelined callers use Begin/Finish instead.
	//lint:ignore lockscope sequential convenience path; rollback-on-encode-error requires encoding before publishing
	ansBytes, err = EncodeAnswer(ans)
	if err != nil {
		return nil, nil, err
	}
	db.tree = rec.Tree()
	db.ctr++
	return ansBytes, rec.VO(), nil
}

// Staged is the committed-but-unencoded result of Begin: the ordered
// section already applied the operation and advanced ctr; Finish does
// the remaining work — canonical answer encoding and VO pruning — on
// the captured immutable snapshot, outside any lock.
type Staged struct {
	preCtr uint64
	rec    *merkle.Recording
	ans    any
}

// Begin is the ordered section of the pipelined hot path: it applies op
// to the persistent tree, bumps ctr, and captures the recording — and
// nothing else. The returned Staged references only immutable nodes of
// the persistent tree, so Finish (and any number of other Staged
// results from earlier or later operations) can run concurrently with
// subsequent Begins. On error the database is unchanged.
//
// Unlike Apply, a failure to encode the answer surfaces in Finish,
// after the transition is already committed; that only happens for
// answers that are not gob-encodable, which is a bug in the operation,
// not a reachable server state.
func (db *DB) Begin(op Op) (*Staged, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec := db.tree.Record()
	ans, err := op.Apply(&Tx{rec: rec})
	if err != nil {
		return nil, err
	}
	st := &Staged{preCtr: db.ctr, rec: rec, ans: ans}
	db.tree = rec.Tree()
	db.ctr++
	return st, nil
}

// PreCtr returns ctr as of the start of the staged operation — the
// value the protocols present to the user.
func (st *Staged) PreCtr() uint64 { return st.preCtr }

// Finish produces the canonical answer encoding and the verification
// object. It is safe to call concurrently with any database activity.
func (st *Staged) Finish() (ansBytes []byte, vo *merkle.VO, err error) {
	ansBytes, err = EncodeAnswer(st.ans)
	if err != nil {
		return nil, nil, err
	}
	return ansBytes, st.rec.VO(), nil
}

// Preload applies op without advancing ctr or building a VO. It
// constructs the initial database state D₀ (which the paper allows to
// be arbitrary, with M(D₀) common knowledge) before any protocol
// starts; it must not be called afterwards.
func (db *DB) Preload(op Op) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	tx := &Tx{tree: db.tree}
	if _, err := op.Apply(tx); err != nil {
		return err
	}
	db.tree = tx.tree
	return nil
}

// ApplyPlain executes op without building a verification object — the
// trusted-server execution path, used as the performance floor in the
// workload-preservation experiments (desideratum 3).
func (db *DB) ApplyPlain(op Op) (ansBytes []byte, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tx := &Tx{tree: db.tree}
	ans, err := op.Apply(tx)
	if err != nil {
		return nil, err
	}
	// Deliberately mirrors the seed's fully serialized trusted path so
	// the workload-preservation experiments measure what they claim.
	//lint:ignore lockscope trusted-server baseline must keep the seed's serialized shape for a fair floor
	ansBytes, err = EncodeAnswer(ans)
	if err != nil {
		return nil, err
	}
	db.tree = tx.tree
	db.ctr++
	return ansBytes, nil
}

// Snapshot captures the database (tree structure + operation counter)
// for persistence. The restored database has the identical root
// digest, so a restarted server stays consistent with every client's
// verified state.
func (db *DB) Snapshot() *DBSnapshot {
	db.mu.Lock()
	ctr, tree := db.ctr, db.tree
	db.mu.Unlock()
	// The structural walk happens outside the lock: tree is persistent,
	// so the captured version never changes under us.
	return &DBSnapshot{Ctr: ctr, Tree: tree.Snapshot()}
}

// DBSnapshot is the persistent form of a DB.
type DBSnapshot struct {
	Ctr  uint64
	Tree *merkle.Snapshot
}

// RestoreDB rebuilds a database from a snapshot.
func RestoreDB(s *DBSnapshot) (*DB, error) {
	if s == nil || s.Tree == nil {
		return nil, errors.New("vdb: nil snapshot")
	}
	t, err := merkle.Restore(s.Tree)
	if err != nil {
		return nil, err
	}
	return &DB{tree: t, ctr: s.Ctr}, nil
}

// Fork returns an independent copy of the database sharing structure
// with the original — the primitive the adversary package uses to
// mount the Figure 1 partition attack. Cheap because the tree is
// persistent.
func (db *DB) Fork() *DB {
	db.mu.Lock()
	defer db.mu.Unlock()
	return &DB{tree: db.tree, ctr: db.ctr}
}

// VerifyDerive replays op on the VO's pruned pre-state without a
// prior expectation of the old root: it returns both the old root
// digest *derived from the VO* and the post-state root. The replayed
// answer is checked against the server's claimed answer.
//
// Protocol I authenticates the derived old root with the previous
// user's signature over h(M(D)‖ctr); Protocol II feeds it into the
// XOR registers and authenticates the whole chain at sync time. A
// client that instead tracks its own trusted root (single-user
// setting) uses Verify.
func VerifyDerive(op Op, claimedAns []byte, vo *merkle.VO) (oldRoot, newRoot digest.Digest, err error) {
	if vo == nil {
		return digest.Zero, digest.Zero, errors.New("vdb: missing verification object")
	}
	t, err := vo.Tree()
	if err != nil {
		return digest.Zero, digest.Zero, err
	}
	oldRoot = t.RootDigest()
	tx := &Tx{tree: t}
	ans, err := op.Apply(tx)
	if err != nil {
		return digest.Zero, digest.Zero, err
	}
	got, err := EncodeAnswer(ans)
	if err != nil {
		return digest.Zero, digest.Zero, err
	}
	// Fast path: when the claimed bytes equal the local encoding of the
	// replayed answer, the claim trivially decodes to the replayed
	// answer — no canonicalization needed. This is the common case
	// (server and verifier encode with the same gob type-ID assignment)
	// and saves a full decode + re-encode per verified operation.
	if !bytes.Equal(got, claimedAns) {
		// Slow path: gob streams from a different process can
		// legitimately differ byte-wise for equal values; canonicalize
		// the claim by decode + local re-encode before judging.
		claimed, err := canonicalAnswer(claimedAns)
		if err != nil {
			return digest.Zero, digest.Zero, fmt.Errorf("%w (undecodable claim: %v)", ErrAnswerMismatch, err)
		}
		if !bytes.Equal(got, claimed) {
			return digest.Zero, digest.Zero, ErrAnswerMismatch
		}
	}
	return oldRoot, tx.tree.RootDigest(), nil
}

// Verify is the client side for a caller that already trusts a root:
// it replays op on the VO's pruned pre-state, checks the pre-state
// against oldRoot, checks the replayed answer against the server's
// claimed answer, and returns the post-state root digest the client
// computed itself.
//
// Verify enforces the three checks of Section 4.1: the VO is
// consistent with the trusted root, the answer is what the committed
// database yields, and the new root is the correct successor state.
func Verify(op Op, claimedAns []byte, vo *merkle.VO, oldRoot digest.Digest) (newRoot digest.Digest, err error) {
	derivedOld, newRoot, err := VerifyDerive(op, claimedAns, vo)
	if err != nil {
		return digest.Zero, err
	}
	if derivedOld != oldRoot {
		return digest.Zero, fmt.Errorf("%w: VO root %s, trusted root %s",
			merkle.ErrRootMismatch, derivedOld.Short(), oldRoot.Short())
	}
	return newRoot, nil
}
