package vdb

import (
	"errors"
	"fmt"
)

// ErrBadOp is returned for structurally invalid operations (empty
// keys, missing fields). Ops arrive from the network, so Apply
// validates rather than assumes.
var ErrBadOp = errors.New("vdb: invalid operation")

// KV is one key-value pair in a WriteOp.
type KV struct {
	Key string
	Val []byte
}

// ReadOp reads a set of keys. It models the paper's checkout/read
// request at the key-value level.
type ReadOp struct {
	Keys []string
}

// ReadResult is the answer entry for one key of a ReadOp.
type ReadResult struct {
	Key   string
	Found bool
	Val   []byte
}

// ReadAnswer is the answer type of ReadOp.
type ReadAnswer struct {
	Results []ReadResult
}

// Apply implements Op.
func (o *ReadOp) Apply(tx *Tx) (any, error) {
	if len(o.Keys) == 0 {
		return nil, fmt.Errorf("%w: read with no keys", ErrBadOp)
	}
	ans := ReadAnswer{Results: make([]ReadResult, len(o.Keys))}
	for i, k := range o.Keys {
		if k == "" {
			return nil, fmt.Errorf("%w: empty key", ErrBadOp)
		}
		v, ok, err := tx.Get(k)
		if err != nil {
			return nil, err
		}
		ans.Results[i] = ReadResult{Key: k, Found: ok, Val: append([]byte(nil), v...)}
	}
	return ans, nil
}

func (o *ReadOp) String() string { return fmt.Sprintf("read(%d keys)", len(o.Keys)) }

// WriteOp writes and/or deletes a set of keys. It models the paper's
// commit/update request at the key-value level. Puts are applied in
// order (last write to a key wins), then deletes.
type WriteOp struct {
	Puts    []KV
	Deletes []string
}

// WriteAnswer is the answer type of WriteOp.
type WriteAnswer struct {
	Put     int
	Deleted int // number of Deletes that existed
}

// Apply implements Op.
func (o *WriteOp) Apply(tx *Tx) (any, error) {
	if len(o.Puts) == 0 && len(o.Deletes) == 0 {
		return nil, fmt.Errorf("%w: empty write", ErrBadOp)
	}
	var ans WriteAnswer
	for _, kv := range o.Puts {
		if kv.Key == "" {
			return nil, fmt.Errorf("%w: empty key", ErrBadOp)
		}
		if err := tx.Put(kv.Key, kv.Val); err != nil {
			return nil, err
		}
		ans.Put++
	}
	for _, k := range o.Deletes {
		if k == "" {
			return nil, fmt.Errorf("%w: empty key", ErrBadOp)
		}
		found, err := tx.Delete(k)
		if err != nil {
			return nil, err
		}
		if found {
			ans.Deleted++
		}
	}
	return ans, nil
}

func (o *WriteOp) String() string {
	return fmt.Sprintf("write(%d puts, %d deletes)", len(o.Puts), len(o.Deletes))
}

// RangeOp reads up to Limit records with Lo <= key < Hi ("" Hi means
// unbounded; Limit 0 means no limit).
type RangeOp struct {
	Lo, Hi string
	Limit  int
}

// RangeAnswer is the answer type of RangeOp.
type RangeAnswer struct {
	Results []ReadResult
}

// Apply implements Op.
func (o *RangeOp) Apply(tx *Tx) (any, error) {
	if o.Limit < 0 {
		return nil, fmt.Errorf("%w: negative limit", ErrBadOp)
	}
	var ans RangeAnswer
	err := tx.Range(o.Lo, o.Hi, func(k string, v []byte) bool {
		ans.Results = append(ans.Results, ReadResult{Key: k, Found: true, Val: append([]byte(nil), v...)})
		return o.Limit == 0 || len(ans.Results) < o.Limit
	})
	if err != nil {
		return nil, err
	}
	return ans, nil
}

func (o *RangeOp) String() string { return fmt.Sprintf("range[%q,%q)", o.Lo, o.Hi) }

// CASOp is a compare-and-swap: it writes New to Key only if the
// current value equals Expect (nil Expect = key must be absent). It
// exists to demonstrate the deterministic-transaction model the VO
// replay enables: the verifier re-executes the conditional logic, so
// the server cannot lie about whether the swap happened — the
// read-modify-write races of plain key-value outsourcing disappear.
type CASOp struct {
	Key    string
	Expect []byte // nil: require absence
	New    []byte
}

// CASAnswer is the answer type of CASOp.
type CASAnswer struct {
	Swapped bool
	// Actual is the value that defeated the swap (nil when absent or
	// when the swap succeeded).
	Actual []byte
}

// Apply implements Op.
func (o *CASOp) Apply(tx *Tx) (any, error) {
	if o.Key == "" {
		return nil, fmt.Errorf("%w: empty key", ErrBadOp)
	}
	cur, found, err := tx.Get(o.Key)
	if err != nil {
		return nil, err
	}
	match := (o.Expect == nil && !found) ||
		(o.Expect != nil && found && string(cur) == string(o.Expect))
	if !match {
		ans := CASAnswer{}
		if found {
			ans.Actual = append([]byte(nil), cur...)
		}
		return ans, nil
	}
	if err := tx.Put(o.Key, o.New); err != nil {
		return nil, err
	}
	return CASAnswer{Swapped: true}, nil
}

func (o *CASOp) String() string { return fmt.Sprintf("cas(%s)", o.Key) }

// NopOp performs no reads or writes; its application still increments
// ctr. The token-passing baseline uses it as the "signature of a null
// message" turn from Section 2.2.3, and sync-probe operations use it to
// observe the server state without touching data.
type NopOp struct{}

// NopAnswer is the answer type of NopOp.
type NopAnswer struct{}

// Apply implements Op.
func (o *NopOp) Apply(tx *Tx) (any, error) { return NopAnswer{}, nil }

func (o *NopOp) String() string { return "nop" }
