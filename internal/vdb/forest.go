// Merkle forest: the database sharded into N independent Merkle
// B⁺-trees, each with its own counter and mutex, folded into a single
// root-of-roots.
//
// The paper's detection argument needs a totally ordered,
// authenticated history per verification domain — not one global lock.
// Sharding the item space makes each shard its own domain: single-shard
// operations take only their shard's ordered section, so operations on
// different shards never contend. The forest publishes one (gctr,
// root-of-roots) head under a tiny forest mutex, which is what the
// commitment, witness, and checkpoint machinery consume; none of them
// know N. A one-shard forest folds to the shard root itself, keeping
// N=1 bit-compatible with the pre-forest database.
//
// Cross-shard transactions (CrossOp) lock their shards in ascending
// order, apply all legs or none, and publish every leg under one fmu
// entry — a two-phase prepare/commit whose per-shard sub-VOs the
// protocol layer binds together with a transaction digest (see
// internal/core.CrossTxDigest).
package vdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/merkle"
)

// MaxShards bounds the forest width: shard indexes travel on the wire
// as small integers and every response carries the head vector, so an
// absurd width is a protocol error, not a tuning choice.
const MaxShards = 256

// shard is one tree of the forest. Its mutex serializes the shard's
// ordered section (apply + counter bump + head publication); the
// atomic counters below instrument exactly how narrow that section is
// and how often anyone waits for it — the evidence E16 reports.
type shard struct {
	mu   sync.Mutex
	tree *merkle.Tree
	ctr  uint64

	lockedAt time.Time // guarded by mu: acquisition instant, for held-time accounting

	ops       atomic.Uint64
	contended atomic.Uint64
	waitNs    atomic.Uint64
	heldNs    atomic.Uint64
}

// lock acquires the shard's ordered section, counting contended
// acquisitions and time spent waiting. The fast path is a TryLock: an
// uncontended acquisition costs one CAS and no clock read beyond the
// held-time stamp.
func (s *shard) lock() {
	if !s.mu.TryLock() {
		//lint:ignore randsource contention accounting on the lock path, not a verification path
		t0 := time.Now()
		s.mu.Lock()
		s.contended.Add(1)
		s.waitNs.Add(uint64(time.Since(t0)))
	}
	//lint:ignore randsource contention accounting on the lock path, not a verification path
	s.lockedAt = time.Now()
}

// unlock releases the shard's ordered section, accounting the held
// time.
func (s *shard) unlock() {
	s.heldNs.Add(uint64(time.Since(s.lockedAt)))
	s.ops.Add(1)
	s.mu.Unlock()
}

// headEntry is one published (tree, ctr) head. Published means: the
// forest mutex has seen it — readers that only take fmu observe a
// consistent cut of the whole forest.
type headEntry struct {
	tree *merkle.Tree
	ctr  uint64
}

// ShardHead is the wire/persistence form of one shard's head.
type ShardHead struct {
	Root digest.Digest
	Ctr  uint64
}

// shardHeadsOf converts published head entries to ShardHeads,
// computing (memoized) root digests outside any lock. Returns nil for
// nil input.
func shardHeadsOf(heads []headEntry) []ShardHead {
	if heads == nil {
		return nil
	}
	out := make([]ShardHead, len(heads))
	for i, e := range heads {
		out[i] = ShardHead{Root: e.tree.RootDigest(), Ctr: e.ctr}
	}
	return out
}

// FoldHeads computes the root-of-roots of a head vector. A single
// head folds to its own root — that is what keeps one-shard forests
// bit-compatible with the pre-forest database (same root, same
// commitments, same witness chains). Wider forests bind the width and
// every (root, ctr) pair under DomainForest.
func FoldHeads(heads []ShardHead) digest.Digest {
	if len(heads) == 1 {
		return heads[0].Root
	}
	h := digest.NewHasher(digest.DomainForest).Uint64(uint64(len(heads)))
	for _, e := range heads {
		h.Digest(e.Root)
		h.Uint64(e.Ctr)
	}
	return h.Sum()
}

// newForest allocates the DB skeleton with n empty shard slots (trees
// unset; callers fill them).
func newForest(n int) *DB {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{}
	}
	return &DB{shards: shards, heads: make([]headEntry, n)}
}

// NewSharded creates an empty database of n Merkle shards with the
// given branching factor (0 = merkle.DefaultOrder). n must be in
// [1, MaxShards]; NewSharded(order, 1) is New(order).
func NewSharded(order, n int) *DB {
	if n < 1 || n > MaxShards {
		panic(fmt.Sprintf("vdb: shard count %d out of range [1,%d]", n, MaxShards))
	}
	db := newForest(n)
	for i := range db.shards {
		t := merkle.New(order)
		db.shards[i].tree = t
		db.heads[i] = headEntry{tree: t}
	}
	return db
}

// Shards returns the forest width N.
func (db *DB) Shards() int { return len(db.shards) }

// Heads returns the published per-shard head vector.
func (db *DB) Heads() []ShardHead {
	db.fmu.Lock()
	heads := append([]headEntry(nil), db.heads...)
	db.fmu.Unlock()
	return shardHeadsOf(heads)
}

// ShardRoots returns the current root digest of every shard — the
// per-shard M(D₀)s a forest-mode Protocol II user is initialized with.
func (db *DB) ShardRoots() []digest.Digest {
	heads := db.Heads()
	roots := make([]digest.Digest, len(heads))
	for i, h := range heads {
		roots[i] = h.Root
	}
	return roots
}

// ShardStats is the contention evidence for one shard's ordered
// section.
type ShardStats struct {
	Shard     int
	Ops       uint64 // ordered-section entries (including preloads and forks' source ops)
	Contended uint64 // entries that found the mutex held
	WaitNs    uint64 // total time spent waiting for the mutex
	HeldNs    uint64 // total time the mutex was held
}

// Stats returns a snapshot of every shard's contention counters.
// Counters are cumulative; benchmarks subtract a before-snapshot.
func (db *DB) Stats() []ShardStats {
	out := make([]ShardStats, len(db.shards))
	for i, s := range db.shards {
		out[i] = ShardStats{
			Shard:     i,
			Ops:       s.ops.Load(),
			Contended: s.contended.Load(),
			WaitNs:    s.waitNs.Load(),
			HeldNs:    s.heldNs.Load(),
		}
	}
	return out
}

// ShardKeyer routes an operation to a shard by a single key. The
// key-value ops in this package route structurally (see RouteOp);
// higher-level ops (internal/cvs) implement ShardKeyer — typically
// with a constant key, colocating one application's whole item space
// on one shard so its multi-key transactions stay single-shard.
type ShardKeyer interface {
	ShardKey() string
}

// RouteKey maps a key to a shard index by FNV-1a hash. Deterministic
// and implementation-wide: server and client must agree on routing, or
// a lying server could serve an op from the wrong verification domain.
func RouteKey(key string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// RouteOp maps an operation to its shard in an n-shard forest. Every
// key the operation touches must land on one shard; multi-key
// operations that straddle shards are rejected with a hint to split
// them into a CrossOp. Range scans and cross ops are not routable.
// RouteOp is pure: the client runs the same function to check the
// shard the server claims.
func RouteOp(op Op, n int) (int, error) {
	if n <= 1 {
		return 0, nil
	}
	switch o := op.(type) {
	case *CrossOp:
		return 0, fmt.Errorf("%w: a cross-shard transaction routes per leg (use BeginCross)", ErrBadOp)
	case *ReadOp:
		return routeKeys(n, o.Keys, nil)
	case *WriteOp:
		keys := make([]string, 0, len(o.Puts))
		for _, kv := range o.Puts {
			keys = append(keys, kv.Key)
		}
		return routeKeys(n, keys, o.Deletes)
	case *CASOp:
		return RouteKey(o.Key, n), nil
	case *NopOp:
		return 0, nil
	case *RangeOp:
		return 0, fmt.Errorf("%w: range scans span shards and are not routable on a sharded database", ErrBadOp)
	}
	if sk, ok := op.(ShardKeyer); ok {
		return RouteKey(sk.ShardKey(), n), nil
	}
	return 0, fmt.Errorf("%w: %T is not routable on a sharded database", ErrBadOp, op)
}

// routeKeys routes a multi-key operation: all keys must agree.
func routeKeys(n int, keys, more []string) (int, error) {
	sid := -1
	for _, group := range [][]string{keys, more} {
		for _, k := range group {
			s := RouteKey(k, n)
			if sid == -1 {
				sid = s
				continue
			}
			if s != sid {
				return 0, fmt.Errorf("%w: keys straddle shards %d and %d; split the operation into a CrossOp with one leg per shard", ErrBadOp, sid, s)
			}
		}
	}
	if sid == -1 {
		sid = 0 // empty op: Apply rejects it; route is irrelevant
	}
	return sid, nil
}

// ShardFor routes op within this database.
func (db *DB) ShardFor(op Op) (int, error) {
	return RouteOp(op, len(db.shards))
}

// splitPreload distributes a preload op over the shards: a WriteOp is
// split per shard (the only op preloads use for bulk seeding); any
// other op must route cleanly to one shard. Returns one op per shard
// slot (nil = nothing for that shard).
func (db *DB) splitPreload(op Op) ([]Op, error) {
	n := len(db.shards)
	parts := make([]Op, n)
	if n == 1 {
		parts[0] = op
		return parts, nil
	}
	if w, ok := op.(*WriteOp); ok {
		sub := make([]*WriteOp, n)
		at := func(sid int) *WriteOp {
			if sub[sid] == nil {
				sub[sid] = &WriteOp{}
			}
			return sub[sid]
		}
		for _, kv := range w.Puts {
			s := at(RouteKey(kv.Key, n))
			s.Puts = append(s.Puts, kv)
		}
		for _, k := range w.Deletes {
			s := at(RouteKey(k, n))
			s.Deletes = append(s.Deletes, k)
		}
		for sid, s := range sub {
			if s != nil {
				parts[sid] = s
			}
		}
		return parts, nil
	}
	sid, err := db.ShardFor(op)
	if err != nil {
		return nil, err
	}
	parts[sid] = op
	return parts, nil
}

// CrossOp is a cross-shard transaction: an ordered list of legs, each
// a routable single-shard operation on a distinct shard. On a sharded
// database it goes through BeginCross (all legs or none, one gctr
// window); on a single-shard database it is an ordinary Op whose legs
// apply sequentially — the N=1 compatibility path.
type CrossOp struct {
	Legs []Op
}

// CrossAnswer is the answer type of CrossOp: one answer per leg, in
// leg order.
type CrossAnswer struct {
	Answers []any
}

// Apply implements Op for the single-shard case (and the client-side
// whole-op replay at N=1). Legs apply in order; any failure aborts the
// whole transaction.
func (o *CrossOp) Apply(tx *Tx) (any, error) {
	if len(o.Legs) < 2 {
		return nil, fmt.Errorf("%w: cross op needs at least 2 legs", ErrBadOp)
	}
	ans := CrossAnswer{Answers: make([]any, len(o.Legs))}
	for i, leg := range o.Legs {
		if leg == nil {
			return nil, fmt.Errorf("%w: nil cross leg %d", ErrBadOp, i)
		}
		if _, nested := leg.(*CrossOp); nested {
			return nil, fmt.Errorf("%w: nested cross op (leg %d)", ErrBadOp, i)
		}
		a, err := leg.Apply(tx)
		if err != nil {
			return nil, fmt.Errorf("cross leg %d: %w", i, err)
		}
		ans.Answers[i] = a
	}
	return ans, nil
}

func (o *CrossOp) String() string { return fmt.Sprintf("cross(%d legs)", len(o.Legs)) }

// CrossStaged is the committed cross-shard transaction: every leg's
// ordered section already ran; per-leg Finish (VO pruning, answer
// encoding) happens outside all locks, like Staged.Finish.
type CrossStaged struct {
	preGctr  uint64
	postGctr uint64
	legs     []*Staged
	heads    []headEntry
}

// PreGctr returns the global counter before the transaction's window.
func (cst *CrossStaged) PreGctr() uint64 { return cst.preGctr }

// PostGctr returns the global counter after the transaction's window
// (PreGctr + number of legs).
func (cst *CrossStaged) PostGctr() uint64 { return cst.postGctr }

// Legs returns the per-leg staged results, in leg order.
func (cst *CrossStaged) Legs() []*Staged { return cst.legs }

// Heads returns the published head vector as of the transaction's
// publication.
func (cst *CrossStaged) Heads() []ShardHead { return shardHeadsOf(cst.heads) }

// lockOrdered acquires the given shards' ordered sections in the
// caller-supplied (ascending) order — the forest's deadlock-freedom
// rule for multi-shard sections.
func (db *DB) lockOrdered(sids []int) {
	for _, sid := range sids {
		db.shards[sid].lock()
	}
}

// unlockOrdered releases what lockOrdered acquired, in reverse.
func (db *DB) unlockOrdered(sids []int) {
	for i := len(sids) - 1; i >= 0; i-- {
		db.shards[sids[i]].unlock()
	}
}

// BeginCross runs the two-phase ordered section of a cross-shard
// transaction: route every leg, lock the leg shards in ascending
// order, apply all legs (prepare — nothing published yet), then swap
// every leg's tree and counter and publish all heads under one fmu
// entry (commit). A failing leg aborts with no shard changed. The
// database is consistent at every published point: either no leg of
// the transaction is visible or all are, which is the server-side half
// of the torn-transaction detection argument — the protocol layer
// binds the legs' sub-VOs with a transaction digest so a *lying*
// server that drops a leg is caught by the client (see
// proto2.HandleResponseForest).
func (db *DB) BeginCross(op *CrossOp) (*CrossStaged, error) {
	return db.BeginCrossIn(op, nil)
}

// BeginCrossIn is BeginCross with a section hook: section (if non-nil)
// runs with every leg shard's ordered section still held, after the
// commit is published, so a caller can swap per-shard bookkeeping for
// all legs at the transaction's linearization point (see
// vdb.BeginShardIn for why a hook beats a second mutex). It does not
// run if the transaction aborts.
func (db *DB) BeginCrossIn(op *CrossOp, section func(cst *CrossStaged)) (*CrossStaged, error) {
	n := len(db.shards)
	if n == 1 {
		return nil, fmt.Errorf("%w: BeginCross on a single-shard database (use Begin)", ErrBadOp)
	}
	if len(op.Legs) < 2 {
		return nil, fmt.Errorf("%w: cross op needs at least 2 legs", ErrBadOp)
	}
	sids := make([]int, len(op.Legs))
	seen := make(map[int]bool, len(op.Legs))
	for i, leg := range op.Legs {
		if leg == nil {
			return nil, fmt.Errorf("%w: nil cross leg %d", ErrBadOp, i)
		}
		sid, err := RouteOp(leg, n)
		if err != nil {
			return nil, fmt.Errorf("cross leg %d: %w", i, err)
		}
		if seen[sid] {
			return nil, fmt.Errorf("%w: cross legs collide on shard %d (colocated legs belong in one leg)", ErrBadOp, sid)
		}
		seen[sid] = true
		sids[i] = sid
	}
	order := append([]int(nil), sids...)
	sort.Ints(order)
	db.lockOrdered(order)
	// Prepare: apply every leg to its shard's recording. No shard state
	// changes yet, so an abort here leaves the forest untouched.
	legs := make([]*Staged, len(op.Legs))
	for i, legOp := range op.Legs {
		s := db.shards[sids[i]]
		rec := s.tree.Record()
		ans, err := legOp.Apply(&Tx{rec: rec})
		if err != nil {
			db.unlockOrdered(order)
			return nil, fmt.Errorf("cross leg %d: %w", i, err)
		}
		legs[i] = &Staged{shard: sids[i], preCtr: s.ctr, rec: rec, ans: ans}
	}
	// Commit: swap every leg's tree and counter, then publish the whole
	// transaction as one gctr window.
	for i := range legs {
		s := db.shards[sids[i]]
		s.tree = legs[i].rec.Tree()
		s.ctr++
	}
	cst := &CrossStaged{legs: legs}
	db.fmu.Lock()
	cst.preGctr = db.gctr
	db.gctr += uint64(len(legs))
	for i := range legs {
		s := db.shards[sids[i]]
		db.heads[sids[i]] = headEntry{tree: s.tree, ctr: s.ctr}
	}
	cst.postGctr = db.gctr
	cst.heads = append([]headEntry(nil), db.heads...)
	db.fmu.Unlock()
	if section != nil {
		section(cst)
	}
	db.unlockOrdered(order)
	for _, leg := range legs {
		leg.postGctr = cst.postGctr
		leg.heads = cst.heads
	}
	return cst, nil
}

// LockAll runs section with every shard's ordered section held, taken
// in ascending order — the forest-wide barrier that snapshot-style
// callers (fork, checkpoint) use to pair a database cut with their own
// per-shard bookkeeping. Calling back into the database from section
// deadlocks, with one exception: Fork and the other fmu-only readers
// are safe (shard locks before fmu is the forest's lock order).
func (db *DB) LockAll(section func()) {
	order := make([]int, len(db.shards))
	for i := range order {
		order[i] = i
	}
	db.lockOrdered(order)
	section()
	db.unlockOrdered(order)
}
