package vdb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/merkle"
)

// applyAndVerify runs op on the server db and then verifies it like a
// client would, returning the client-computed new root.
func applyAndVerify(t *testing.T, db *DB, op Op) ([]byte, digest.Digest) {
	t.Helper()
	oldRoot := db.Root()
	ans, vo, err := db.Apply(op)
	if err != nil {
		t.Fatalf("Apply(%v): %v", op, err)
	}
	newRoot, err := Verify(op, ans, vo, oldRoot)
	if err != nil {
		t.Fatalf("Verify(%v): %v", op, err)
	}
	if newRoot != db.Root() {
		t.Fatalf("client root %s != server root %s", newRoot.Short(), db.Root().Short())
	}
	return ans, newRoot
}

func TestWriteThenRead(t *testing.T) {
	db := New(4)
	applyAndVerify(t, db, &WriteOp{Puts: []KV{{"a", []byte("1")}, {"b", []byte("2")}}})
	ansBytes, _ := applyAndVerify(t, db, &ReadOp{Keys: []string{"a", "b", "c"}})

	ans, err := DecodeAnswer(ansBytes)
	if err != nil {
		t.Fatal(err)
	}
	ra, ok := ans.(ReadAnswer)
	if !ok {
		t.Fatalf("answer type %T", ans)
	}
	if len(ra.Results) != 3 {
		t.Fatalf("results: %+v", ra.Results)
	}
	if !ra.Results[0].Found || string(ra.Results[0].Val) != "1" {
		t.Fatalf("read a: %+v", ra.Results[0])
	}
	if ra.Results[2].Found {
		t.Fatalf("read c should be absent: %+v", ra.Results[2])
	}
	if db.Ctr() != 2 {
		t.Fatalf("ctr = %d, want 2", db.Ctr())
	}
}

func TestWriteDeletes(t *testing.T) {
	db := New(4)
	applyAndVerify(t, db, &WriteOp{Puts: []KV{{"a", []byte("1")}, {"b", []byte("2")}}})
	ansBytes, _ := applyAndVerify(t, db, &WriteOp{Deletes: []string{"a", "missing"}})
	ans, _ := DecodeAnswer(ansBytes)
	if wa := ans.(WriteAnswer); wa.Deleted != 1 {
		t.Fatalf("Deleted = %d, want 1", wa.Deleted)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestRangeOp(t *testing.T) {
	db := New(4)
	var puts []KV
	for i := 0; i < 20; i++ {
		puts = append(puts, KV{fmt.Sprintf("k%02d", i), []byte{byte(i)}})
	}
	applyAndVerify(t, db, &WriteOp{Puts: puts})
	ansBytes, _ := applyAndVerify(t, db, &RangeOp{Lo: "k05", Hi: "k15"})
	ans, _ := DecodeAnswer(ansBytes)
	ra := ans.(RangeAnswer)
	if len(ra.Results) != 10 || ra.Results[0].Key != "k05" {
		t.Fatalf("range results: %+v", ra.Results)
	}
	// Limited range.
	ansBytes, _ = applyAndVerify(t, db, &RangeOp{Lo: "k00", Limit: 3})
	ans, _ = DecodeAnswer(ansBytes)
	if ra := ans.(RangeAnswer); len(ra.Results) != 3 {
		t.Fatalf("limited range: %+v", ra.Results)
	}
}

func TestNopOp(t *testing.T) {
	db := New(4)
	before := db.Root()
	applyAndVerify(t, db, &NopOp{})
	if db.Root() != before {
		t.Fatal("nop changed the root")
	}
	if db.Ctr() != 1 {
		t.Fatal("nop must still increment ctr")
	}
}

func TestBadOps(t *testing.T) {
	db := New(4)
	for name, op := range map[string]Op{
		"empty read":       &ReadOp{},
		"empty write":      &WriteOp{},
		"empty read key":   &ReadOp{Keys: []string{""}},
		"empty put key":    &WriteOp{Puts: []KV{{"", nil}}},
		"empty delete key": &WriteOp{Deletes: []string{""}},
		"negative limit":   &RangeOp{Limit: -1},
	} {
		if _, _, err := db.Apply(op); !errors.Is(err, ErrBadOp) {
			t.Errorf("%s: want ErrBadOp, got %v", name, err)
		}
	}
	if db.Ctr() != 0 {
		t.Fatal("failed ops must not advance ctr")
	}
}

func TestVerifyCatchesTamperedAnswer(t *testing.T) {
	db := New(4)
	applyAndVerify(t, db, &WriteOp{Puts: []KV{{"a", []byte("true-value")}}})

	oldRoot := db.Root()
	op := &ReadOp{Keys: []string{"a"}}
	_, vo, err := db.Apply(op)
	if err != nil {
		t.Fatal(err)
	}
	// Server lies about the answer.
	lie, err := EncodeAnswer(ReadAnswer{Results: []ReadResult{{Key: "a", Found: true, Val: []byte("forged")}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(op, lie, vo, oldRoot); !errors.Is(err, ErrAnswerMismatch) {
		t.Fatalf("want ErrAnswerMismatch, got %v", err)
	}
}

func TestVerifyCatchesStaleState(t *testing.T) {
	// Server answers from an old fork of the database: the VO root
	// will not match the client's trusted root.
	db := New(4)
	applyAndVerify(t, db, &WriteOp{Puts: []KV{{"a", []byte("1")}}})
	stale := db.Fork()
	applyAndVerify(t, db, &WriteOp{Puts: []KV{{"a", []byte("2")}}})

	trusted := db.Root()
	op := &ReadOp{Keys: []string{"a"}}
	ans, vo, err := stale.Apply(op)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(op, ans, vo, trusted); !errors.Is(err, merkle.ErrRootMismatch) {
		t.Fatalf("want ErrRootMismatch, got %v", err)
	}
}

func TestForkIndependence(t *testing.T) {
	db := New(4)
	applyAndVerify(t, db, &WriteOp{Puts: []KV{{"shared", []byte("x")}}})
	f := db.Fork()
	applyAndVerify(t, db, &WriteOp{Puts: []KV{{"main-only", []byte("m")}}})
	applyAndVerify(t, f, &WriteOp{Puts: []KV{{"fork-only", []byte("f")}}})

	if db.Root() == f.Root() {
		t.Fatal("forks did not diverge")
	}
	ansBytes, _, err := f.Apply(&ReadOp{Keys: []string{"main-only", "shared"}})
	if err != nil {
		t.Fatal(err)
	}
	ans, _ := DecodeAnswer(ansBytes)
	ra := ans.(ReadAnswer)
	if ra.Results[0].Found {
		t.Fatal("fork sees main's write")
	}
	if !ra.Results[1].Found {
		t.Fatal("fork lost shared prefix")
	}
}

func TestAnswerEncodingDeterministic(t *testing.T) {
	ans := ReadAnswer{Results: []ReadResult{{Key: "a", Found: true, Val: []byte("v")}}}
	a, err := EncodeAnswer(ans)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeAnswer(ans)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("answer encoding is not deterministic")
	}
}

// TestQuickClientServerAgreement: for random op sequences, client
// verification always succeeds against an honest server and the
// client's chained root digest tracks the server's exactly — the
// foundation the protocols build on.
func TestQuickClientServerAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := New([]int{3, 4, 8}[rng.Intn(3)])
		clientRoot := db.Root()
		for i, n := 0, 1+rng.Intn(40); i < n; i++ {
			var op Op
			switch rng.Intn(4) {
			case 0:
				op = &ReadOp{Keys: []string{fmt.Sprintf("k%d", rng.Intn(50))}}
			case 1:
				op = &RangeOp{Lo: "k", Limit: 5}
			default:
				op = &WriteOp{Puts: []KV{{fmt.Sprintf("k%d", rng.Intn(50)), []byte{byte(rng.Int())}}}}
			}
			oldRoot := db.Root()
			ans, vo, err := db.Apply(op)
			if err != nil {
				t.Log(err)
				return false
			}
			newRoot, err := Verify(op, ans, vo, clientRoot)
			if err != nil {
				t.Log(err)
				return false
			}
			if oldRoot != clientRoot || newRoot != db.Root() {
				t.Log("root chain diverged")
				return false
			}
			clientRoot = newRoot
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
