package vdb

import "encoding/gob"

// Ops and answers travel inside interface-typed fields (Op, any), so
// their concrete types must be registered with gob. Each package
// registers its own types; internal/cvs does the same for the CVS ops.
func init() {
	gob.Register(&ReadOp{})
	gob.Register(&WriteOp{})
	gob.Register(&RangeOp{})
	gob.Register(&NopOp{})
	gob.Register(&CASOp{})
	gob.Register(&CrossOp{})
	gob.Register(ReadAnswer{})
	gob.Register(WriteAnswer{})
	gob.Register(RangeAnswer{})
	gob.Register(NopAnswer{})
	gob.Register(CASAnswer{})
	gob.Register(CrossAnswer{})
}
