package vdb

import (
	"errors"
	"testing"
)

func TestCASLifecycle(t *testing.T) {
	db := New(0)

	// Create-if-absent.
	ansBytes, _ := applyAndVerify(t, db, &CASOp{Key: "lock", Expect: nil, New: []byte("alice")})
	ans, _ := DecodeAnswer(ansBytes)
	if ca := ans.(CASAnswer); !ca.Swapped {
		t.Fatalf("create CAS: %+v", ca)
	}
	// Second create-if-absent loses, reporting the holder.
	ansBytes, _ = applyAndVerify(t, db, &CASOp{Key: "lock", Expect: nil, New: []byte("bob")})
	ans, _ = DecodeAnswer(ansBytes)
	if ca := ans.(CASAnswer); ca.Swapped || string(ca.Actual) != "alice" {
		t.Fatalf("losing CAS: %+v", ca)
	}
	// Swap with the right expectation.
	ansBytes, _ = applyAndVerify(t, db, &CASOp{Key: "lock", Expect: []byte("alice"), New: []byte("bob")})
	ans, _ = DecodeAnswer(ansBytes)
	if ca := ans.(CASAnswer); !ca.Swapped {
		t.Fatalf("handover CAS: %+v", ca)
	}
	// Stale expectation loses.
	ansBytes, _ = applyAndVerify(t, db, &CASOp{Key: "lock", Expect: []byte("alice"), New: []byte("carol")})
	ans, _ = DecodeAnswer(ansBytes)
	if ca := ans.(CASAnswer); ca.Swapped || string(ca.Actual) != "bob" {
		t.Fatalf("stale CAS: %+v", ca)
	}
}

func TestCASValidation(t *testing.T) {
	db := New(0)
	if _, _, err := db.Apply(&CASOp{}); !errors.Is(err, ErrBadOp) {
		t.Fatalf("empty key: %v", err)
	}
}

// TestCASServerCannotLieAboutOutcome: the server claims the swap
// succeeded when it did not (or vice versa); the verifier's replay of
// the conditional catches it either way.
func TestCASServerCannotLieAboutOutcome(t *testing.T) {
	db := New(0)
	applyAndVerify(t, db, &WriteOp{Puts: []KV{{Key: "lock", Val: []byte("alice")}}})

	op := &CASOp{Key: "lock", Expect: []byte("bob"), New: []byte("mallory")}
	oldRoot := db.Root()
	_, vo, err := db.Apply(op) // honest outcome: not swapped
	if err != nil {
		t.Fatal(err)
	}
	lie, err := EncodeAnswer(CASAnswer{Swapped: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(op, lie, vo, oldRoot); !errors.Is(err, ErrAnswerMismatch) {
		t.Fatalf("forged CAS outcome not caught: %v", err)
	}
}

// TestRangeCompletenessAttack: the server omits one record from a
// range answer — the classic completeness violation the paper's
// related work worries about ("neglected to report"). The replayed
// range disagrees and the answer is rejected.
func TestRangeCompletenessAttack(t *testing.T) {
	db := New(0)
	puts := []KV{}
	for i := 0; i < 10; i++ {
		puts = append(puts, KV{Key: string(rune('a' + i)), Val: []byte{byte(i)}})
	}
	applyAndVerify(t, db, &WriteOp{Puts: puts})

	op := &RangeOp{Lo: "a", Hi: "z"}
	oldRoot := db.Root()
	ansBytes, vo, err := db.Apply(op)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := DecodeAnswer(ansBytes)
	if err != nil {
		t.Fatal(err)
	}
	ra := honest.(RangeAnswer)
	if len(ra.Results) != 10 {
		t.Fatalf("setup: %d results", len(ra.Results))
	}
	// Omit the middle record and re-encode.
	ra.Results = append(ra.Results[:5:5], ra.Results[6:]...)
	forged, err := EncodeAnswer(ra)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(op, forged, vo, oldRoot); !errors.Is(err, ErrAnswerMismatch) {
		t.Fatalf("incomplete range answer not caught: %v", err)
	}
}
