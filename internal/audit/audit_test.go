package audit

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

func put(k, v string) vdb.Op { return &vdb.WriteOp{Puts: []vdb.KV{{Key: k, Val: []byte(v)}}} }

// loopback wires an auditor's Publish straight back into its own
// SubmitReport, standing in for the broadcast hub in a one-client
// world.
func loopback(ap **Auditor) func(Report) error {
	return func(r Report) error {
		(*ap).SubmitReport(r)
		return nil
	}
}

func TestEpochOf(t *testing.T) {
	a := &Auditor{epoch: 4}
	cases := map[uint64]uint64{0: 0, 1: 0, 4: 0, 5: 1, 8: 1, 9: 2}
	for g, want := range cases {
		if got := a.epochOf(g); got != want {
			t.Errorf("epochOf(%d) = %d, want %d", g, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	u := proto2.NewUser(1, vdb.New(0).Root(), 100)
	pub := func(Report) error { return nil }
	bad := []Config{
		{Epoch: 4, Users: 1, Publish: pub}, // no user
		{User: u, Users: 1, Publish: pub},  // no epoch
		{User: u, Epoch: 4, Publish: pub},  // no users
		{User: u, Epoch: 4, Users: 1},      // no publish
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}

// TestHonestEpochRun drives a single client through several epochs of
// honest operations: every epoch must close, the seal must cover the
// tail, and no failure may be recorded.
func TestHonestEpochRun(t *testing.T) {
	db := vdb.New(0)
	srv := proto2.NewServer(db)
	u := proto2.NewUser(1, db.Root(), 1<<20)

	var aud *Auditor
	a, err := New(Config{User: u, Epoch: 4, Users: 1, Publish: loopback(&aud), Chain: true})
	if err != nil {
		t.Fatal(err)
	}
	aud = a
	defer a.Stop()

	for i := 0; i < 10; i++ {
		if err := a.WaitAdmissible(); err != nil {
			t.Fatalf("op %d: WaitAdmissible: %v", i, err)
		}
		op := put(fmt.Sprintf("k%d", i), "v")
		resp, err := srv.HandleOp(u.Request(op))
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Submit(Record{Op: op, Resp: resp}); err != nil {
			t.Fatalf("op %d: Submit: %v", i, err)
		}
		a.NoteEpoch(resp.Ctr + 1)
	}
	a.Seal()
	if err := a.WaitSealed(10 * time.Second); err != nil {
		t.Fatalf("WaitSealed: %v", err)
	}
	if err := a.Err(); err != nil {
		t.Fatalf("honest run recorded failure: %v", err)
	}
	// 10 ops, epoch length 4: the last op (g=10) lands in epoch 2, and
	// the all-sealed check closes everything through it.
	if got := a.Completed(); got != 3 {
		t.Fatalf("Completed() = %d, want 3", got)
	}
	st := a.Stats()
	if st.Submitted != 11 || st.Audited != 11 { // 10 records + 1 seal
		t.Fatalf("stats: %+v", st)
	}
	// All single-client ops after the first are server-adjacent, so the
	// replay chain should have carried most of them.
	if st.ChainHits == 0 {
		t.Fatalf("replay chain never hit: %+v", st)
	}
}

// TestMidEpochFailureIsTyped tampers with an answer whose (optimistic)
// result the client already consumed; the background audit must
// surface a typed *EpochAuditFailure naming the bad counter, with the
// underlying detection class reachable through errors.As.
func TestMidEpochFailureIsTyped(t *testing.T) {
	db := vdb.New(0)
	srv := proto2.NewServer(db)
	u := proto2.NewUser(1, db.Root(), 1<<20)

	var aud *Auditor
	a, err := New(Config{User: u, Epoch: 4, Users: 1, Publish: loopback(&aud)})
	if err != nil {
		t.Fatal(err)
	}
	aud = a
	defer a.Stop()

	for i := 0; i < 3; i++ {
		op := put(fmt.Sprintf("k%d", i), "v")
		resp, err := srv.HandleOp(u.Request(op))
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			resp.Answer = append([]byte(nil), resp.Answer...)
			resp.Answer[0] ^= 0xff // lie about the answer, post-hoc
		}
		if err := a.Submit(Record{Op: op, Resp: resp}); err != nil {
			break // terminal failure already visible to the hot path
		}
	}
	if err := a.WaitDrained(10 * time.Second); err == nil {
		t.Fatal("tampered answer not detected")
	}
	var ef *EpochAuditFailure
	if !errors.As(a.Err(), &ef) {
		t.Fatalf("failure is %T (%v), want *EpochAuditFailure", a.Err(), a.Err())
	}
	if ef.Ctr != 2 {
		t.Fatalf("failure names counter %d, want 2", ef.Ctr)
	}
	if ef.Epoch != 0 {
		t.Fatalf("failure names epoch %d, want 0", ef.Epoch)
	}
	if _, ok := core.AsDetection(a.Err()); !ok {
		t.Fatalf("detection class lost: %v", a.Err())
	}
	// Submits after a terminal failure must report it, not enqueue.
	if err := a.Submit(Record{}); err == nil {
		t.Fatal("Submit after failure returned nil")
	}
	if err := a.WaitAdmissible(); err == nil {
		t.Fatal("WaitAdmissible after failure returned nil")
	}
}

// TestQueueFullDegradesNeverDrops blocks the auditor (via a stalled
// publish) while submitting past the queue capacity: the overflow
// submit must block — counted as a degradation — and every record must
// still be audited once the auditor resumes.
func TestQueueFullDegradesNeverDrops(t *testing.T) {
	db := vdb.New(0)
	srv := proto2.NewServer(db)
	u := proto2.NewUser(1, db.Root(), 1<<20)

	release := make(chan struct{})
	var aud *Auditor
	a, err := New(Config{
		User: u, Epoch: 1 << 20, Users: 1, Queue: 1,
		Publish: func(r Report) error {
			<-release // stall the worker inside the seal publish
			aud.SubmitReport(r)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	aud = a
	defer a.Stop()

	a.Seal() // worker picks this up and stalls in Publish

	// Two valid records: the first fills the queue (cap 1), the second
	// must block rather than drop.
	recs := make([]Record, 2)
	for i := range recs {
		op := put(fmt.Sprintf("k%d", i), "v")
		resp, err := srv.HandleOp(u.Request(op))
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = Record{Op: op, Resp: resp}
	}
	if err := a.Submit(recs[0]); err != nil {
		t.Fatal(err)
	}
	submitted := make(chan error, 1)
	go func() { submitted <- a.Submit(recs[1]) }()

	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Degraded == 0 {
		if time.Now().After(deadline) {
			t.Fatal("overflow submit never counted as degraded")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-submitted:
		t.Fatalf("overflow submit returned early: %v", err)
	default:
	}

	close(release)
	if err := <-submitted; err != nil {
		t.Fatalf("overflow submit: %v", err)
	}
	if err := a.WaitDrained(10 * time.Second); err != nil {
		t.Fatalf("WaitDrained: %v", err)
	}
	st := a.Stats()
	if st.Audited != 3 { // seal + 2 records: nothing dropped
		t.Fatalf("audited %d records, want 3 (%+v)", st.Audited, st)
	}
	if st.Degraded == 0 || st.HighWater < 1 {
		t.Fatalf("backpressure stats not recorded: %+v", st)
	}
	if err := a.Err(); err != nil {
		t.Fatalf("backpressure caused failure: %v", err)
	}
}

// TestSkippedEpochBoundaries interleaves two clients so that one of
// them crosses several epoch boundaries in a single step; the auditor
// must emit one snapshot per skipped boundary, and the seal must stand
// in for epochs past a client's last operation.
func TestSkippedEpochBoundaries(t *testing.T) {
	db := vdb.New(0)
	srv := proto2.NewServer(db)
	u0 := proto2.NewUser(1, db.Root(), 1<<20)
	u1 := proto2.NewUser(2, db.Root(), 1<<20)

	var aud *Auditor
	a, err := New(Config{User: u0, Epoch: 2, Users: 2, Publish: loopback(&aud)})
	if err != nil {
		t.Fatal(err)
	}
	aud = a
	defer a.Stop()

	do0 := func(i int) Record {
		op := put(fmt.Sprintf("a%d", i), "v")
		resp, err := srv.HandleOp(u0.Request(op))
		if err != nil {
			t.Fatal(err)
		}
		return Record{Op: op, Resp: resp}
	}
	do1 := func(i int) {
		op := put(fmt.Sprintf("b%d", i), "v")
		resp, err := srv.HandleOp(u1.Request(op))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u1.HandleResponse(op, resp); err != nil {
			t.Fatal(err)
		}
	}

	// Global order: u0 at g=1; u1 at g=2..5; u0 at g=6. Epoch length 2
	// puts u0's second record in epoch 2, so auditing it must emit
	// u0's (identical) snapshots for boundaries 0 and 1 first.
	r1 := do0(0)
	a.NoteEpoch(1)
	do1(0) // g=2: closes epoch 0 for u1
	u1e0 := u1.SyncReport()
	do1(1)
	do1(2) // g=4: closes epoch 1 for u1
	u1e1 := u1.SyncReport()
	do1(3)       // g=5
	r2 := do0(1) // g=6
	a.NoteEpoch(6)

	if err := a.Submit(r1); err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(r2); err != nil {
		t.Fatal(err)
	}
	a.Seal()

	// Feed u1's cut snapshots in as its (manual) epoch reports and seal.
	a.SubmitReport(Report{Epoch: 0, Report: u1e0})
	a.SubmitReport(Report{Epoch: 1, Report: u1e1})
	a.SubmitReport(Report{Seal: true, Report: u1.SyncReport()})

	if err := a.WaitSealed(10 * time.Second); err != nil {
		t.Fatalf("WaitSealed: %v", err)
	}
	if err := a.Err(); err != nil {
		t.Fatalf("skipped-boundary run failed: %v", err)
	}
	if got := a.Completed(); got != 3 { // epochs 0,1,2 all closed
		t.Fatalf("Completed() = %d, want 3", got)
	}
}

// TestWaitAdmissibleGatesOneEpochAhead checks the pipelining bound:
// operations may run one epoch ahead of the audit, never two.
func TestWaitAdmissibleGatesOneEpochAhead(t *testing.T) {
	u := proto2.NewUser(1, vdb.New(0).Root(), 1<<20)
	var aud *Auditor
	a, err := New(Config{User: u, Epoch: 2, Users: 1, Publish: loopback(&aud)})
	if err != nil {
		t.Fatal(err)
	}
	aud = a
	defer a.Stop()

	a.NoteEpoch(2) // epoch 0: nothing closed yet, but still in-window — admissible
	done := make(chan error, 1)
	go func() { done <- a.WaitAdmissible() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitAdmissible inside open epoch: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitAdmissible blocked inside the open epoch")
	}

	a.NoteEpoch(3) // epoch 1: one past the unclosed epoch 0 — must block
	go func() { done <- a.WaitAdmissible() }()
	select {
	case <-done:
		t.Fatal("WaitAdmissible admitted past an unclosed epoch")
	case <-time.After(50 * time.Millisecond):
	}

	// Close epoch 0: the idle client's genesis snapshot is a valid cut.
	a.SubmitReport(Report{Epoch: 0, Report: u.SyncReport()})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitAdmissible after epoch closed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitAdmissible still blocked after epoch closed")
	}
}

// TestStopUnblocksWaiters: Stop must release admission waiters and
// blocked submitters with ErrClosed, not leave them hanging.
func TestStopUnblocksWaiters(t *testing.T) {
	u := proto2.NewUser(1, vdb.New(0).Root(), 1<<20)
	var aud *Auditor
	a, err := New(Config{User: u, Epoch: 2, Users: 1, Publish: loopback(&aud)})
	if err != nil {
		t.Fatal(err)
	}
	aud = a

	a.NoteEpoch(5) // two epochs ahead: admission blocks
	done := make(chan error, 1)
	go func() { done <- a.WaitAdmissible() }()
	time.Sleep(10 * time.Millisecond)
	a.Stop()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("WaitAdmissible after Stop: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop left WaitAdmissible hanging")
	}
	if err := a.Submit(Record{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Stop: %v, want ErrClosed", err)
	}
	a.Stop() // idempotent
}

// TestReportIdempotence: duplicate reports (hub replays after a
// reconnect) must not corrupt epoch assembly.
func TestReportIdempotence(t *testing.T) {
	u := proto2.NewUser(1, vdb.New(0).Root(), 1<<20)
	var aud *Auditor
	a, err := New(Config{User: u, Epoch: 2, Users: 2, Publish: loopback(&aud)})
	if err != nil {
		t.Fatal(err)
	}
	aud = a
	defer a.Stop()

	rep := func(id sig.UserID) core.SyncReportII {
		v := proto2.NewUser(id, vdb.New(0).Root(), 1<<20)
		return v.SyncReport()
	}
	a.SubmitReport(Report{Epoch: 0, Report: rep(1)})
	a.SubmitReport(Report{Epoch: 0, Report: rep(1)}) // duplicate: ignored
	if got := a.Completed(); got != 0 {
		t.Fatalf("duplicate report completed an epoch: Completed() = %d", got)
	}
	a.SubmitReport(Report{Epoch: 0, Report: rep(2)})
	if got := a.Completed(); got != 1 {
		t.Fatalf("Completed() = %d, want 1", got)
	}
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
}
