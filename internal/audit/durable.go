// Durable audit pipeline: the WAL-backed half of the auditor.
//
// The epoch auditor's queue is the only copy of every unverified
// obligation, so a crash silently un-audits operations whose answers
// were already delivered — the exact trust gap the synchronous barrier
// existed to close. With a journal directory configured, Submit
// appends each record to a checksummed segmented WAL (internal/wal)
// and makes it durable BEFORE the optimistic answer is released; on
// restart the journal is replayed from the last durable cursor and
// every surviving obligation is re-verified, so the exposure window
// provably closes across the crash. If a tampered response was
// answered optimistically and the process died before verification,
// the tampered bytes are already on disk and recovery convicts the
// server anyway.
//
// The durable cursor pairs the highest closed epoch with the user's
// marshaled protocol state at that epoch's boundary cut. Replay
// restores the user to the cut and re-runs verification of every
// frame past it — byte-for-byte the same checks, so recovery can
// neither miss a deviation nor invent one. Because closure of an
// epoch needs this client's own boundary report, a cursor at epoch E
// implies that report reached the broadcast hub before the crash; a
// restarted client therefore resumes with a fresh hub session whose
// full-history replay re-delivers every peer report it needs
// (broadcast.DialHubResume). The in-process Hub keeps no history, so
// durable recovery requires the TCP hub.
//
// On any journal I/O error the auditor flips to degrade-to-sync:
// records are still verified — Submit blocks until its record has
// been audited, restoring the synchronous per-op barrier — but
// nothing is silently lost. The transition is sticky and visible as
// DurabilityDegradedSync in Stats.
package audit

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"trustedcvs/internal/fault"
	"trustedcvs/internal/wal"
)

// DurabilityState is the auditor's crash-durability mode, exposed via
// Stats.
type DurabilityState int

const (
	// DurabilityVolatile: no journal configured; queued records do not
	// survive a crash (the pre-WAL behavior).
	DurabilityVolatile DurabilityState = iota
	// DurabilityWAL: every record is checksummed and fsynced to the
	// journal before its optimistic answer is released.
	DurabilityWAL
	// DurabilityDegradedSync: the journal failed; Submit now blocks
	// until its record has been verified — per-operation synchronous
	// audit, never silent loss.
	DurabilityDegradedSync
)

func (d DurabilityState) String() string {
	switch d {
	case DurabilityWAL:
		return "wal"
	case DurabilityDegradedSync:
		return "degraded-sync"
	default:
		return "volatile"
	}
}

// Cursor is the durable resume point of an audit journal: the highest
// epoch whose closure check passed before it was written, and the
// user's marshaled protocol state at that epoch's boundary cut.
type Cursor struct {
	Epoch int64
	State []byte
}

// LoadCursor reads the audit journal's cursor at dir. A nil Cursor
// with nil error means no cursor has ever been written (fresh
// journal). Callers restore the user from Cursor.State before
// constructing the Auditor so replay re-verifies from the right cut.
func LoadCursor(dir string) (*Cursor, error) {
	payload, ok, err := wal.ReadCursor(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	var cur Cursor
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&cur); err != nil {
		return nil, fmt.Errorf("audit: decode cursor: %w", err)
	}
	return &cur, nil
}

// encodeRecord renders one obligation for the journal. Seals are never
// journaled: a restarted client re-seals on its own schedule.
func encodeRecord(r Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&r); err != nil {
		return nil, fmt.Errorf("audit: encode record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeRecord(b []byte) (Record, error) {
	var r Record
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return Record{}, fmt.Errorf("audit: decode journaled record: %w", err)
	}
	return r, nil
}

// AppendRaw appends one obligation frame to the journal at dir exactly
// as a live auditor's Submit would, without an Auditor attached —
// crash-harness support for planting a record "between" answer release
// and verification, the race a real crash loses. epoch is the 0-based
// audit epoch the record's claimed counter lands in.
func AppendRaw(dir string, rec Record, epoch uint64) error {
	payload, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	w, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		return err
	}
	if err := w.Append(epoch, payload); err != nil {
		_ = w.Close()
		return err
	}
	return w.Close()
}

// claimedG extracts the record's claimed post-operation global counter
// — untrusted, but a lie only mislabels the journal frame's epoch and
// is convicted by verification either way.
func (a *Auditor) claimedG(r Record) uint64 {
	switch {
	case r.CrossResp != nil:
		return r.CrossResp.GCtr
	case a.forest:
		return r.Resp.GCtr
	default:
		return r.Resp.Ctr + 1
	}
}

// initDurable arms the journal: load the cursor, decode every frame
// past it for re-verification, repair and reopen the journal for
// appending. Called from New before the worker starts.
func (a *Auditor) initDurable(dir string, fs fault.FS) error {
	cur, err := LoadCursor(dir)
	if err != nil {
		return err
	}
	ckpt := int64(-1)
	if cur != nil {
		ckpt = cur.Epoch
		a.emitted = cur.Epoch
		a.maxEpoch = cur.Epoch
		a.completed = cur.Epoch
	}
	var pending []Record
	err = wal.Replay(dir, func(fr wal.Record) error {
		if int64(fr.Epoch) <= ckpt {
			return nil // durably closed before the crash
		}
		rec, err := decodeRecord(fr.Payload)
		if err != nil {
			return err
		}
		pending = append(pending, rec)
		return nil
	})
	if err != nil {
		return err
	}
	w, err := wal.Open(wal.Options{Dir: dir, FS: fs})
	if err != nil {
		return err
	}
	a.wal = w
	a.walDir = dir
	a.walFS = fs
	a.lastCkpt = ckpt
	a.cuts = make(map[uint64][]byte)
	a.replayQ = pending
	a.recovering = len(pending) > 0
	// Any restart (a cursor or surviving frames) may have left a now-
	// stale seal in the hub log; the worker retracts it first thing.
	a.retract = cur != nil || len(pending) > 0
	return nil
}

// feedRecovery re-submits every journaled obligation that survived the
// crash, in journal order, ahead of any live Submit (which blocks on
// the recovering flag — order is what makes the counter checks
// replayable). Runs on its own goroutine.
func (a *Auditor) feedRecovery() {
	defer a.wg.Done()
	for _, rec := range a.replayQ {
		a.lockGate()
		a.submitted++
		a.replayed++
		a.unlockGate()
		select {
		case a.ch <- rec:
		case <-a.done:
			return
		}
	}
	a.replayQ = nil
	a.lockGate()
	a.recovering = false
	a.cond.Broadcast()
	a.unlockGate()
}

// walAppend journals one record before its answer is released; the
// frame is durable when it returns nil.
func (a *Auditor) walAppend(rec Record) error {
	payload, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	return a.wal.Append(a.epochOf(a.claimedG(rec)), payload)
}

// noteWALFailure flips the sticky degrade-to-sync state.
func (a *Auditor) noteWALFailure(err error) {
	a.lockGate()
	defer a.unlockGate()
	if !a.degradedSync {
		a.degradedSync = true
		a.walErr = err
	}
}

// waitRecoveredLocked holds Submit and Seal callers back until the
// recovery feeder has re-queued every journaled obligation. Caller
// holds the gate.
func (a *Auditor) waitRecoveredLocked() {
	for a.recovering && a.failed == nil && !a.closed {
		a.cond.Wait()
	}
}

// waitProcessed blocks until the auditor has drained everything
// submitted so far — the degrade-to-sync barrier: a record that could
// not be journaled must be verified before its answer is released.
func (a *Auditor) waitProcessed() error {
	a.lockGate()
	defer a.unlockGate()
	for a.failed == nil && !a.closed && a.audited < a.submitted {
		a.cond.Wait()
	}
	if a.failed != nil {
		return a.failed
	}
	if a.closed {
		return ErrClosed
	}
	return nil
}

// stashCut records the user's marshaled state at the boundary cut
// closing epoch ep, so the checkpointer can pair it with the epoch
// once its closure check passes. Worker-owned state, no locks.
func (a *Auditor) stashCut(ep uint64) {
	if a.wal == nil {
		return
	}
	st, err := a.user.MarshalState()
	if err != nil {
		a.fail(fmt.Errorf("audit: marshal boundary state: %w", err))
		return
	}
	a.cuts[ep] = st
}

// stashSeal records the user's final state; it stands in for the cut
// of every epoch the sealed client never crossed.
func (a *Auditor) stashSeal() {
	if a.wal == nil {
		return
	}
	st, err := a.user.MarshalState()
	if err != nil {
		a.fail(fmt.Errorf("audit: marshal seal state: %w", err))
		return
	}
	a.sealState = st
}

// maybeCheckpoint advances the durable cursor to the newest closed
// epoch and truncates the journal segments it covers. Runs on the
// worker between batches (and once more at Stop), never inside the
// gate: cursor and segment I/O are too slow for a critical section.
func (a *Auditor) maybeCheckpoint() {
	if a.wal == nil {
		return
	}
	a.lockGate()
	target := a.completed
	degraded := a.degradedSync
	a.unlockGate()
	if target <= a.lastCkpt || degraded {
		return
	}
	state, ok := a.cuts[uint64(target)]
	if !ok {
		// Closure came from this client's seal standing in for epochs
		// it never crossed; the seal state IS the cut state for all of
		// them.
		state = a.sealState
	}
	if state == nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Cursor{Epoch: target, State: state}); err != nil {
		a.noteWALFailure(fmt.Errorf("audit: encode cursor: %w", err))
		return
	}
	if err := wal.WriteCursor(a.walFS, a.walDir, buf.Bytes()); err != nil {
		a.noteWALFailure(err)
		return
	}
	// Frames of epochs <= target are covered by the cursor; drop their
	// segments. A crash between cursor write and unlink leaves stale
	// frames that replay skips by epoch — harmless.
	if err := a.wal.TruncateThrough(uint64(target)); err != nil && !errors.Is(err, wal.ErrClosed) {
		a.noteWALFailure(err)
	}
	for ep := range a.cuts {
		if int64(ep) <= target {
			delete(a.cuts, ep)
		}
	}
	a.lastCkpt = target
}

// closeDurable finalizes the journal at Stop: one last checkpoint
// (the worker is quiesced, so worker-owned state is safe to touch)
// and a clean close.
func (a *Auditor) closeDurable() {
	if a.wal == nil {
		return
	}
	a.maybeCheckpoint()
	_ = a.wal.Close()
}
