// Package audit implements the epoch-batched asynchronous auditor of
// Protocol II: the optimistic half of an optimistic/audit split in
// which the server's answer is returned to the caller immediately and
// every verification obligation — VO replay, register fold, counter
// checks, the sync closure check, and the witness quorum cross-check —
// moves onto a background goroutine that consumes a bounded queue of
// (op, response) records.
//
// # Detection bound
//
// The synchronous driver detects a deviation before the next operation
// starts. The auditor weakens this to *within one epoch*: global
// operation counters are divided into fixed windows of N counters
// (epoch e covers counters eN+1 .. (e+1)N), and the paper's sync-up
// closure check (Lemma 4.1) runs once per window instead of once per
// round. This is exactly the paper's k-bounded deviation knob: the
// effective k becomes the epoch length N, measured in *global*
// operations rather than per-user ones.
//
// # Consistent cuts without a barrier
//
// The lock-step barrier made register reports a consistent cut by
// stopping the world. The auditor gets the same cut from the counters
// themselves: each client's records arrive in its own operation order
// with strictly increasing global counters, so when the audit stream
// first crosses an epoch boundary the registers at that instant are
// precisely this client's contribution to the prefix of the global
// history ending at the boundary. Every client snapshots at the same
// counter prefix, so the assembled report vector is a cut of the
// global order — no barrier, no false alarms. Forest responses carry
// GCtr (the sum of the shard head counters), which is strictly
// increasing and orders every shard consistently, so a GCtr-prefix cut
// induces a per-shard-prefix cut and core.CheckSyncForest applies
// unchanged.
//
// A client that stops operating never crosses another boundary; its
// Seal broadcast publishes its final registers, which stand in for
// every epoch past the last one it crossed (it performed no operations
// there, so the snapshot is unchanged). When every client has sealed,
// one final closure check authenticates the tail window, giving full
// shutdown coverage.
//
// # Backpressure
//
// Submit never drops a record. While the bounded queue has room the
// hot path pays one channel send; when it is full the submitter blocks
// until the auditor catches up — throughput degrades to the audit
// rate, which is the synchronous mode's rate. The degradation count
// and queue high-water mark are exported via Stats.
package audit

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"trustedcvs/internal/backoff"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/wal"
	"trustedcvs/internal/wire"
	"trustedcvs/internal/witness"
)

// DefaultQueue is the bounded queue capacity when Config.Queue is 0.
const DefaultQueue = 256

// Record is one audit obligation: the operation a client issued and
// the response the server returned for it, queued in the client's own
// operation order. Exactly one of Resp (single-shard) or CrossResp
// (cross-shard transaction, with Cross set) is non-nil.
type Record struct {
	Op        vdb.Op
	Resp      *core.OpResponseII
	Cross     *vdb.CrossOp
	CrossResp *core.OpResponseForest

	seal bool
}

// Report is one client's register snapshot for one epoch boundary,
// broadcast to every peer. A Seal report carries the client's final
// registers and stands in for every epoch past the last one the
// client crossed.
type Report struct {
	// Epoch is the 0-based epoch the snapshot closes (ignored for
	// seals).
	Epoch uint64
	// Seal marks the client's final report: it has stopped operating.
	Seal bool
	// Retract withdraws this client's earlier seal: it crashed with a
	// seal in flight (or already published) and has resumed operating
	// from its journal, so the old "final" registers are final no more.
	// The hub's FIFO total order makes the retraction land after the
	// stale seal and before any report of the client's new life, at
	// every subscriber alike. Only the snapshot's User field is used.
	Retract bool
	// Report is the register snapshot itself.
	Report core.SyncReportII
}

// Config parameterizes an Auditor.
type Config struct {
	// User is the Protocol II state machine to audit with. The auditor
	// goroutine owns it exclusively from Start on; the hot path may only
	// call its immutable accessors (ID, Request).
	User *proto2.User
	// Epoch is the epoch length N in global operation counters
	// (required: > 0). Detection latency is bounded by one epoch.
	Epoch uint64
	// Users is the client population (required: > 0); epoch closure
	// needs a report from every one of them.
	Users int
	// Queue is the bounded queue capacity (0 = DefaultQueue).
	Queue int
	// Publish broadcasts one of this client's own epoch reports to all
	// peers, this client included (the driver wires it to the broadcast
	// hub, whose FIFO loopback delivers it back through SubmitReport).
	Publish func(Report) error
	// Chain arms the shared-path replay cache on User (single-tree
	// users only; see proto2.EnableReplayChain).
	Chain bool
	// WALDir, when non-empty, arms the crash-durable pipeline: every
	// record is checksummed and fsynced to a segmented journal in this
	// directory before Submit returns, journal frames surviving a crash
	// are re-verified on restart, and journal I/O failure degrades to
	// per-op synchronous audit. See durable.go. When restarting, pass a
	// User restored from LoadCursor's state so replay re-verifies from
	// the right cut.
	WALDir string
	// WALFS is the filesystem the journal writes through (nil =
	// fault.OS); tests interpose fault.FaultyFS crash schedules here.
	WALFS fault.FS
	// Brownout, when > 1, arms brownout degradation: under sustained
	// queue pressure the admission window WaitAdmissible enforces
	// widens one epoch at a time, up to Brownout epochs, and decays
	// back as pressure subsides — effective epoch lengthening for this
	// client. The report grid itself never moves (peers' closure
	// checks depend on the shared epoch boundaries), so correctness is
	// untouched; only this client's optimistic exposure window widens,
	// and it stays bounded by Brownout epochs at the ceiling. 0 or 1
	// disables (the E17 behavior: at most one epoch ahead).
	Brownout int
}

// Auditor drains a bounded queue of Records on a background goroutine,
// verifying each against the user state machine, snapshotting register
// reports at epoch boundaries, assembling the peers' reports, and
// running the closure and witness checks once per epoch. The first
// failure is terminal and is surfaced as an *EpochAuditFailure.
type Auditor struct {
	user   *proto2.User
	id     sig.UserID
	epoch  uint64
	users  int
	forest bool

	initialState digest.Digest
	geneses      []digest.Digest

	publish func(Report) error

	ch   chan Record
	done chan struct{}
	wg   sync.WaitGroup

	// emitted is the highest epoch this client's own boundary report
	// was published for; worker-goroutine state, unlocked by design.
	emitted int64

	// Gate state below is guarded by mu (enter through lockGate /
	// unlockGate; cond is tied to mu). The completion path
	// (SubmitReport → tryCompleteLocked) runs on the driver's single
	// receive goroutine, so epochs complete strictly in order.
	mu   sync.Mutex
	cond *sync.Cond

	check      *witness.Check
	quarantine func()

	failed    error
	closed    bool
	sealSent  bool
	finalDone bool

	maxEpoch  int64 // highest epoch any of this client's ops landed in
	completed int64 // highest epoch whose closure check passed

	reports map[uint64]map[sig.UserID]core.SyncReportII
	seals   map[sig.UserID]core.SyncReportII

	submitted uint64
	audited   uint64
	batches   uint64
	maxBatch  int
	highWater int
	degraded  uint64
	noQuorum  uint64

	// Brownout state (gate-guarded). stretch is the admission-window
	// allowance in epochs (1 = normal, ≤ brownoutMax); hot/cool count
	// consecutive high-/low-occupancy submits driving the widen/decay
	// hysteresis.
	brownoutMax int
	stretch     int64
	maxStretch  int64
	brownouts   uint64
	hot         int
	cool        int

	// Durability state (durable.go). degradedSync, recovering, walErr,
	// and replayed are gate-guarded; the rest is worker-owned (cuts,
	// sealState, lastCkpt) or set once before the worker starts.
	wal          *wal.WAL
	walDir       string
	walFS        fault.FS
	walErr       error
	degradedSync bool
	recovering   bool
	replayed     uint64
	replayQ      []Record
	retract      bool
	lastCkpt     int64
	cuts         map[uint64][]byte
	sealState    []byte
}

// New builds an Auditor and starts its background goroutine.
func New(cfg Config) (*Auditor, error) {
	if cfg.User == nil {
		return nil, errors.New("audit: Config.User is required")
	}
	if cfg.Epoch == 0 {
		return nil, errors.New("audit: Config.Epoch must be positive")
	}
	if cfg.Users <= 0 {
		return nil, errors.New("audit: Config.Users must be positive")
	}
	if cfg.Publish == nil {
		return nil, errors.New("audit: Config.Publish is required")
	}
	q := cfg.Queue
	if q <= 0 {
		q = DefaultQueue
	}
	a := &Auditor{
		user:         cfg.User,
		id:           cfg.User.ID(),
		epoch:        cfg.Epoch,
		users:        cfg.Users,
		forest:       cfg.User.Forest(),
		initialState: cfg.User.InitialState(),
		geneses:      cfg.User.Geneses(),
		publish:      cfg.Publish,
		//lint:ignore boundedqueue capacity is Config.Queue (default DefaultQueue), a fixed config bound; when full, Submit degrades the caller to the audit rate instead of growing
		ch:          make(chan Record, q),
		done:        make(chan struct{}),
		emitted:     -1,
		maxEpoch:    -1,
		completed:   -1,
		lastCkpt:    -1,
		reports:     make(map[uint64]map[sig.UserID]core.SyncReportII),
		seals:       make(map[sig.UserID]core.SyncReportII),
		brownoutMax: cfg.Brownout,
		stretch:     1,
		maxStretch:  1,
	}
	a.cond = sync.NewCond(&a.mu)
	if cfg.Chain {
		a.user.EnableReplayChain()
	}
	if cfg.WALDir != "" {
		if err := a.initDurable(cfg.WALDir, cfg.WALFS); err != nil {
			return nil, err
		}
	}
	a.wg.Add(1)
	go a.run()
	if a.recovering {
		a.wg.Add(1)
		go a.feedRecovery()
	}
	return a, nil
}

// lockGate and unlockGate wrap the auditor's gate mutex so the
// lockscope lint tracks its critical sections like any other hot-path
// lock: no slow call (codec, crypto, network, disk) may run inside.
func (a *Auditor) lockGate()   { a.mu.Lock() }
func (a *Auditor) unlockGate() { a.mu.Unlock() }

// EpochLen returns the configured epoch length N.
func (a *Auditor) EpochLen() uint64 { return a.epoch }

// SetCheck arms the witness quorum cross-check: it runs once per
// completed epoch, on the auditor, instead of once per sync round on
// the hot path. Set before the first operation.
func (a *Auditor) SetCheck(chk *witness.Check) {
	a.lockGate()
	defer a.unlockGate()
	a.check = chk
}

// SetQuarantine registers a callback invoked (once) when the witness
// check convicts the server, before the failure is recorded — the
// driver uses it to quarantine the convicted endpoint.
func (a *Auditor) SetQuarantine(fn func()) {
	a.lockGate()
	defer a.unlockGate()
	a.quarantine = fn
}

// epochOf maps a post-operation global counter to its 0-based epoch.
func (a *Auditor) epochOf(g uint64) uint64 {
	if g == 0 {
		return 0
	}
	return (g - 1) / a.epoch
}

// NoteEpoch records the epoch a just-issued operation's claimed
// counter landed in; WaitAdmissible gates the next operation on it.
// The claim is untrusted, but a lie is harmless here: understating it
// trips the auditor's counter checks, overstating it only makes the
// client gate earlier.
func (a *Auditor) NoteEpoch(g uint64) {
	e := int64(a.epochOf(g))
	a.lockGate()
	defer a.unlockGate()
	if e > a.maxEpoch {
		a.maxEpoch = e
	}
}

// WaitAdmissible blocks while this client is a full epoch ahead of the
// audit: operations in epoch e proceed freely once e-1 has closed, and
// the op that first crosses into e may be issued while e-1 is still
// closing (its own audit is what publishes this client's e-1 boundary
// report, so admission cannot deadlock on it). This bounds the
// optimistic window — and therefore detection latency — to one epoch;
// under brownout (Config.Brownout) the bound widens to the current
// stretch, still capped by the configured ceiling. Returns the
// terminal failure (or ErrClosed) instead of admitting.
func (a *Auditor) WaitAdmissible() error {
	return a.WaitAdmissibleUntil(time.Time{})
}

// WaitAdmissibleUntil is WaitAdmissible with a deadline (zero = none):
// when the caller's budget lapses before admission, it returns
// wire.ErrDeadlineExceeded instead of issuing an op whose client has
// already given up — the refusal happens before the op exists, so no
// obligation is ever created for it.
func (a *Auditor) WaitAdmissibleUntil(deadline time.Time) error {
	var timer *time.Timer
	if !deadline.IsZero() {
		// cond.Wait cannot time out; a timer broadcasting on expiry
		// turns the deadline into one extra wake-up for everyone
		// parked on the gate (cheap: admission waits are rare).
		d := time.Until(deadline)
		if d <= 0 {
			return fmt.Errorf("audit: deadline expired before admission%w", gateErr{wire.ErrDeadlineExceeded})
		}
		timer = time.AfterFunc(d, func() {
			a.lockGate()
			a.cond.Broadcast()
			a.unlockGate()
		})
		defer timer.Stop()
	}
	a.lockGate()
	defer a.unlockGate()
	for a.failed == nil && !a.closed && a.maxEpoch > a.completed+a.stretch {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("audit: deadline expired waiting for admission%w", gateErr{wire.ErrDeadlineExceeded})
		}
		a.cond.Wait()
	}
	if a.failed != nil {
		return a.failed
	}
	if a.closed {
		return ErrClosed
	}
	return nil
}

// gateErr splices a typed sentinel into an admission error without
// altering its message text.
type gateErr struct{ is error }

func (gateErr) Error() string          { return "" }
func (m gateErr) Is(target error) bool { return target == m.is }

// Submit queues one record for audit, in the client's operation order
// (callers serialize their own Submits; the driver's client lock
// already does). It never drops: when the queue is full it counts a
// degradation and blocks until the auditor catches up (throughput
// falls back to the synchronous rate). With a journal configured the
// record is durable on disk before Submit returns — or, if the
// journal has failed, Submit blocks until the record has actually
// been verified (degrade-to-sync). Returns the terminal failure, if
// any, so the hot path stops issuing promptly.
func (a *Auditor) Submit(rec Record) error {
	a.lockGate()
	a.waitRecoveredLocked()
	if a.failed != nil {
		err := a.failed
		a.unlockGate()
		return err
	}
	if a.closed {
		a.unlockGate()
		return ErrClosed
	}
	syncBarrier := a.degradedSync
	a.unlockGate()

	if a.wal != nil && !syncBarrier {
		if err := a.walAppend(rec); err != nil {
			a.noteWALFailure(err)
			syncBarrier = true
		}
	}

	a.lockGate()
	if a.failed != nil {
		err := a.failed
		a.unlockGate()
		return err
	}
	if a.closed {
		a.unlockGate()
		return ErrClosed
	}
	a.submitted++
	occ := len(a.ch) + 1
	if occ > a.highWater {
		a.highWater = occ
	}
	a.notePressureLocked(occ)
	a.unlockGate()

	queued := false
	select {
	case a.ch <- rec:
		queued = true
	default:
	}
	if !queued {
		a.lockGate()
		a.degraded++
		a.unlockGate()
		select {
		case a.ch <- rec:
		case <-a.done:
			return ErrClosed
		}
	}
	if !syncBarrier {
		return nil
	}
	// The record never reached the journal: hold the answer back until
	// it has been verified, restoring the synchronous per-op barrier.
	return a.waitProcessed()
}

// SetBrownout adjusts the brownout ceiling after construction — how
// deployment wrappers arm degradation on auditors their constructors
// built earlier. n <= 1 disables further widening; a window already
// stretched past the new ceiling decays back through the normal
// cool-down hysteresis rather than snapping shut (snapping would
// re-park every admitted-but-unaudited op behind a suddenly narrower
// gate).
func (a *Auditor) SetBrownout(n int) {
	a.lockGate()
	defer a.unlockGate()
	a.brownoutMax = n
}

// notePressureLocked drives brownout hysteresis from queue occupancy
// at submit time: sustained occupancy above half capacity widens the
// admission window one epoch at a time (up to the ceiling); sustained
// occupancy below an eighth decays it back toward 1. Thresholds are
// counted in consecutive submits so a single burst cannot flip the
// mode — "sustained pressure" means the queue stayed hot across at
// least half a queue's worth of submissions.
func (a *Auditor) notePressureLocked(occ int) {
	if a.brownoutMax <= 1 {
		return
	}
	capn := cap(a.ch)
	switch {
	case occ*2 > capn:
		a.hot++
		a.cool = 0
		if a.hot >= capn/2 && a.stretch < int64(a.brownoutMax) {
			a.stretch++
			a.brownouts++
			if a.stretch > a.maxStretch {
				a.maxStretch = a.stretch
			}
			a.hot = 0
			// Widening the window admits ops that were parked at the
			// old bound.
			a.cond.Broadcast()
		}
	case occ*8 < capn:
		a.cool++
		a.hot = 0
		if a.cool >= capn/2 && a.stretch > 1 {
			a.stretch--
			a.cool = 0
		}
	default:
		a.hot = 0
		a.cool = 0
	}
}

// Seal publishes this client's final registers: it has stopped
// operating, and its last snapshot stands in for every later epoch.
// Once all clients have sealed, a final closure check covers the tail
// window. Idempotent.
//
// Sealing is a liveness obligation, not just a shutdown courtesy: a
// client that goes quiet without sealing withholds its boundary
// reports, the open epoch never closes, and peers that have raced one
// epoch ahead stall at WaitAdmissible — exactly as a quiet user stalls
// a sync-barrier round in the underlying protocol.
func (a *Auditor) Seal() {
	a.lockGate()
	a.waitRecoveredLocked()
	if a.sealSent || a.closed {
		a.unlockGate()
		return
	}
	a.sealSent = true
	a.submitted++
	a.unlockGate()
	select {
	case a.ch <- Record{seal: true}:
	case <-a.done:
	}
}

// Err returns the terminal audit failure, if any.
func (a *Auditor) Err() error {
	a.lockGate()
	defer a.unlockGate()
	return a.failed
}

// Completed returns the number of epochs whose closure check passed.
func (a *Auditor) Completed() uint64 {
	a.lockGate()
	defer a.unlockGate()
	return uint64(a.completed + 1)
}

// NoQuorumSkips reports how many per-epoch witness checks were skipped
// for lack of a quorum (availability loss, never detection).
func (a *Auditor) NoQuorumSkips() uint64 {
	a.lockGate()
	defer a.unlockGate()
	return a.noQuorum
}

// Stats is a snapshot of the auditor's counters.
type Stats struct {
	Submitted uint64 // records submitted (seals included)
	Audited   uint64 // records processed by the worker
	Batches   uint64 // worker wake-ups (records drained per wake-up amortize)
	MaxBatch  int    // largest single batch
	QueueCap  int    // configured queue capacity
	HighWater int    // max queue occupancy observed at submit time
	Degraded  uint64 // submits that found the queue full and blocked
	Epochs    uint64 // epochs whose closure check passed
	// ChainHits/ChainMisses: shared-path replays vs full VO
	// verifications (both 0 unless Config.Chain).
	ChainHits   uint64
	ChainMisses uint64
	// Durability is the crash-durability mode (volatile / wal /
	// degraded-sync); Replayed counts obligations re-verified from the
	// journal after a restart.
	Durability DurabilityState
	Replayed   uint64
	// Brownout state: Stretch is the current admission-window
	// allowance in epochs (1 = normal), MaxStretch the widest the
	// window ever got (bounded by Config.Brownout), Brownouts the
	// number of widening steps taken under sustained pressure.
	Stretch    int
	MaxStretch int
	Brownouts  uint64
}

// Stats returns a snapshot of the auditor's counters. The chain
// counters are read from the user state machine, so call only when the
// worker is quiesced (drained or stopped) for exact values.
func (a *Auditor) Stats() Stats {
	a.lockGate()
	defer a.unlockGate()
	hits, misses := a.user.ChainStats()
	dur := DurabilityVolatile
	switch {
	case a.degradedSync:
		dur = DurabilityDegradedSync
	case a.wal != nil:
		dur = DurabilityWAL
	}
	return Stats{
		Submitted: a.submitted, Audited: a.audited,
		Batches: a.batches, MaxBatch: a.maxBatch,
		QueueCap: cap(a.ch), HighWater: a.highWater, Degraded: a.degraded,
		Epochs:    uint64(a.completed + 1),
		ChainHits: hits, ChainMisses: misses,
		Durability: dur, Replayed: a.replayed,
		Stretch: int(a.stretch), MaxStretch: int(a.maxStretch), Brownouts: a.brownouts,
	}
}

// WaitDrained blocks until every submitted record has been audited (or
// the terminal failure / timeout hits). It does not require seals:
// epochs still open stay open.
func (a *Auditor) WaitDrained(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	poll := backoff.Poll(time.Millisecond)
	a.lockGate()
	defer a.unlockGate()
	for a.failed == nil && !a.closed && a.audited < a.submitted {
		if time.Now().After(deadline) {
			return errors.New("audit: WaitDrained timeout")
		}
		a.unlockGate()
		poll.Sleep()
		a.lockGate()
	}
	return a.failed
}

// WaitSealed blocks until the all-sealed final closure check has
// passed (requires every client in the population to have sealed), a
// terminal failure is recorded, or the timeout hits.
func (a *Auditor) WaitSealed(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	poll := backoff.Poll(time.Millisecond)
	a.lockGate()
	defer a.unlockGate()
	for a.failed == nil && !a.finalDone {
		if time.Now().After(deadline) {
			return errors.New("audit: WaitSealed timeout")
		}
		a.unlockGate()
		poll.Sleep()
		a.lockGate()
	}
	return a.failed
}

// Stop shuts the auditor down: waiters are released with ErrClosed and
// the worker goroutine exits. Records still queued are not audited —
// call Seal and WaitSealed first for full coverage. Idempotent.
func (a *Auditor) Stop() {
	a.lockGate()
	if a.closed {
		a.unlockGate()
		return
	}
	a.closed = true
	a.cond.Broadcast()
	a.unlockGate()
	close(a.done)
	a.wg.Wait()
	a.closeDurable()
}

// run is the worker goroutine: it owns the user state machine.
func (a *Auditor) run() {
	defer a.wg.Done()
	// A restarted client may have a seal from its previous life in the
	// hub log; retract it before anything else this life publishes, so
	// no peer runs the all-sealed closure against the stale cut. (A
	// peer that completes its seal set in the window before the
	// retraction lands is the unavoidable distributed race — the
	// crashed client cannot announce its survival any earlier than its
	// first post-recovery publish.)
	if a.retract {
		a.publishReport(Report{Retract: true, Report: a.user.SyncReport()})
	}
	var obs []witness.Observation
	for {
		var rec Record
		select {
		case <-a.done:
			return
		case rec = <-a.ch:
		}
		// Batch drain: everything already queued is verified in one
		// sweep, amortizing the witness-observation lock and the gate
		// update — and giving the shared-path replay chain consecutive
		// records to chain across.
		batch := []Record{rec}
		for n := len(a.ch); n > 0; n-- {
			batch = append(batch, <-a.ch)
		}
		obs = obs[:0]
		for _, r := range batch {
			a.process(r, &obs)
		}
		a.lockGate()
		chk := a.check
		a.unlockGate()
		if chk != nil {
			chk.ObserveBatch(obs)
		}
		a.lockGate()
		a.audited += uint64(len(batch))
		a.batches++
		if len(batch) > a.maxBatch {
			a.maxBatch = len(batch)
		}
		// Degrade-to-sync submitters block until their record has been
		// audited; wake them per batch.
		a.cond.Broadcast()
		a.unlockGate()
		a.maybeCheckpoint()
	}
}

// process audits one record: emit boundary snapshots it crosses, then
// verify it against the user state machine.
func (a *Auditor) process(r Record, obs *[]witness.Observation) {
	a.lockGate()
	dead := a.failed != nil
	a.unlockGate()
	if dead {
		return // keep draining so blocked submitters unblock
	}
	if r.seal {
		a.stashSeal()
		a.publishReport(Report{Seal: true, Report: a.user.SyncReport()})
		return
	}
	g := a.claimedG(r)
	// First record past a boundary: snapshot BEFORE absorbing it, so
	// the registers cover exactly the counter prefix each boundary
	// names. A client that skipped whole epochs emits one (identical)
	// snapshot per skipped boundary — it performed no operations there.
	e := int64(a.epochOf(g))
	for ep := a.emitted + 1; ep < e; ep++ {
		a.stashCut(uint64(ep))
		a.publishReport(Report{Epoch: uint64(ep), Report: a.user.SyncReport()})
	}
	if e > a.emitted {
		a.emitted = e - 1
	}
	var err error
	if r.CrossResp != nil {
		err = a.user.VerifyResponseForest(r.Cross, r.CrossResp)
	} else {
		err = a.user.VerifyResponse(r.Op, r.Resp)
	}
	if err != nil {
		a.fail(&EpochAuditFailure{Epoch: uint64(e), Ctr: g, Cause: err})
		return
	}
	ctr, root := a.user.VerifiedRoot()
	*obs = append(*obs, witness.Observation{Ctr: ctr, Root: root})
}

// publishReport broadcasts one of this client's own reports.
func (a *Auditor) publishReport(r Report) {
	if err := a.publish(r); err != nil {
		a.fail(fmt.Errorf("audit: publish epoch report: %w", err))
	}
}

// SubmitReport feeds one peer report (this client's own loopback
// included) into the epoch assembly. Reports are idempotent — the
// first snapshot per (epoch, user) wins, so hub replays after a
// reconnect cannot corrupt an epoch. Called from the driver's receive
// goroutine.
func (a *Auditor) SubmitReport(r Report) {
	a.lockGate()
	defer a.unlockGate()
	from := r.Report.User
	if r.Retract {
		// The sender outlived its seal (crash + journal recovery); its
		// stale final registers must not stand in for epochs its new
		// life keeps folding. It will re-seal on its own schedule.
		delete(a.seals, from)
		return
	}
	if r.Seal {
		if _, ok := a.seals[from]; !ok {
			a.seals[from] = r.Report
		}
	} else {
		if int64(r.Epoch) <= a.completed {
			// Already durably closed. A restarted client's fresh hub
			// session replays the entire report history; reports for
			// epochs at or below the recovery cursor would otherwise
			// pile up here forever.
			return
		}
		m := a.reports[r.Epoch]
		if m == nil {
			m = make(map[sig.UserID]core.SyncReportII, a.users)
			a.reports[r.Epoch] = m
		}
		if _, ok := m[from]; !ok {
			m[from] = r.Report
		}
	}
	a.tryCompleteLocked()
}

// tryCompleteLocked completes epochs strictly in order: epoch e closes
// once every user contributed a snapshot — its epoch-e report, or its
// seal (FIFO hub order guarantees a seal arrives after all the epoch
// reports that precede it, and a sealed user's final registers equal
// its snapshot for every later epoch). When the whole population has
// sealed, one final closure check covers the tail window.
func (a *Auditor) tryCompleteLocked() {
	for a.failed == nil {
		if len(a.seals) >= a.users && !a.finalDone {
			reports := make([]core.SyncReportII, 0, a.users)
			for _, r := range a.seals {
				reports = append(reports, r)
			}
			e := uint64(a.completed + 1)
			if err := a.closureCheckLocked(reports); err != nil {
				a.failLocked(&EpochAuditFailure{Epoch: e, Cause: err})
				return
			}
			if err := a.witnessCheckLocked(e); err != nil {
				a.failLocked(err)
				return
			}
			a.finalDone = true
			if a.maxEpoch > a.completed {
				a.completed = a.maxEpoch
			}
			a.reports = make(map[uint64]map[sig.UserID]core.SyncReportII)
			a.cond.Broadcast()
			return
		}
		e := uint64(a.completed + 1)
		m := a.reports[e]
		reports := make([]core.SyncReportII, 0, a.users)
		for _, r := range m {
			reports = append(reports, r)
		}
		for id, r := range a.seals {
			if _, ok := m[id]; !ok {
				reports = append(reports, r)
			}
		}
		if len(reports) < a.users {
			return
		}
		if err := a.closureCheckLocked(reports); err != nil {
			a.failLocked(&EpochAuditFailure{Epoch: e, Cause: err})
			return
		}
		if err := a.witnessCheckLocked(e); err != nil {
			a.failLocked(err)
			return
		}
		a.completed = int64(e)
		delete(a.reports, e)
		a.cond.Broadcast()
	}
}

// closureCheckLocked runs the Lemma 4.1 closure check over one
// assembled snapshot vector.
func (a *Auditor) closureCheckLocked(reports []core.SyncReportII) error {
	if a.forest {
		s, err := core.CheckSyncForest(a.geneses, reports)
		if err != nil {
			return core.Detect(core.ProtocolViolation, a.id, a.audited, err)
		}
		if s >= 0 {
			return core.Detect(core.SyncMismatch, a.id, a.audited,
				fmt.Errorf("no last register closes the state chain of shard %d", s))
		}
		return nil
	}
	if core.CheckSyncII(a.initialState, reports) < 0 {
		return core.Detect(core.SyncMismatch, a.id, a.audited,
			errors.New("no last register closes the state chain"))
	}
	return nil
}

// witnessCheckLocked runs the per-epoch witness quorum cross-check.
// No quorum is availability loss (skip, count); divergence quarantines
// the convicted endpoint and is terminal.
func (a *Auditor) witnessCheckLocked(epoch uint64) error {
	if a.check == nil {
		return nil
	}
	err := a.check.Verify()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, witness.ErrNoQuorum):
		a.noQuorum++
		return nil
	default:
		if a.quarantine != nil {
			a.quarantine()
		}
		return &EpochAuditFailure{
			Epoch: epoch,
			Cause: core.Detect(core.WitnessDivergence, a.id, a.audited, err),
		}
	}
}

// fail records the first terminal failure and wakes every waiter.
func (a *Auditor) fail(err error) {
	a.lockGate()
	defer a.unlockGate()
	a.failLocked(err)
}

func (a *Auditor) failLocked(err error) {
	if a.failed == nil {
		a.failed = err
		a.cond.Broadcast()
	}
}
