package audit

import (
	"errors"
	"fmt"
)

// ErrClosed is returned by Submit, WaitAdmissible, and the wait
// helpers after Stop: the auditor is shutting down and accepts no more
// work. It is an availability outcome, never a detection.
var ErrClosed = errors.New("audit: auditor closed")

// EpochAuditFailure is the typed terminal error of epoch-audit mode: a
// deviation surfaced asynchronously, after the operation's answer was
// already returned optimistically. It names the epoch in which the
// deviation surfaced and — when the failure came from verifying a
// specific record rather than from an epoch closure or witness check —
// the first bad global counter, so forensics can start at the exact
// operation the server first lied about.
//
// Cause is the underlying *core.DetectionError (reachable through
// errors.As / core.AsDetection), so every detection class the
// synchronous path raises — BadVO, BadAnswer, CounterReplay,
// SyncMismatch, TornTransaction, WitnessDivergence — keeps its type
// under the asynchronous auditor.
type EpochAuditFailure struct {
	// Epoch is the 0-based epoch index in which the deviation surfaced.
	Epoch uint64
	// Ctr is the first bad global counter (0 when the failure is an
	// epoch-level check — register closure or witness divergence — that
	// convicts the window as a whole rather than one record).
	Ctr uint64
	// Cause is the underlying detection.
	Cause error
}

// Error implements error.
func (e *EpochAuditFailure) Error() string {
	if e.Ctr != 0 {
		return fmt.Sprintf("audit: epoch %d failed at counter %d: %v", e.Epoch, e.Ctr, e.Cause)
	}
	return fmt.Sprintf("audit: epoch %d failed: %v", e.Epoch, e.Cause)
}

// Unwrap exposes the underlying detection to errors.Is/As.
func (e *EpochAuditFailure) Unwrap() error { return e.Cause }
