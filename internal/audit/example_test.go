package audit_test

import (
	"errors"
	"fmt"
	"time"

	"trustedcvs/internal/audit"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/vdb"
)

// Example drives one client through an honest epoch-audit run: every
// operation's answer is consumed immediately, verification happens on
// the background auditor, and the seal closes the tail window. With
// epoch length 4, the 10th op (global counter 10) lands in epoch 2,
// so the all-sealed final check closes epochs 0–2.
func Example() {
	db := vdb.New(0)
	srv := proto2.NewServer(db)
	user := proto2.NewUser(1, db.Root(), 1<<20)

	// In a real deployment Publish broadcasts the report over the hub
	// and the driver's receive loop feeds SubmitReport; with a single
	// client a direct loopback plays both roles.
	var aud *audit.Auditor
	a, err := audit.New(audit.Config{
		User: user, Epoch: 4, Users: 1,
		Publish: func(r audit.Report) error { aud.SubmitReport(r); return nil },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	aud = a
	defer a.Stop()

	for i := 0; i < 10; i++ {
		if err := a.WaitAdmissible(); err != nil { // at most one epoch ahead
			fmt.Println(err)
			return
		}
		op := &vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}
		resp, err := srv.HandleOp(user.Request(op))
		if err != nil {
			fmt.Println(err)
			return
		}
		// The answer in resp is usable right now; the proof obligation
		// is queued behind it.
		if err := a.Submit(audit.Record{Op: op, Resp: resp}); err != nil {
			fmt.Println(err)
			return
		}
		a.NoteEpoch(resp.Ctr + 1)
	}
	a.Seal() // stopped operating: publish final registers
	if err := a.WaitSealed(10 * time.Second); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("failure:", a.Err())
	fmt.Println("epochs closed:", a.Completed())
	// Output:
	// failure: <nil>
	// epochs closed: 3
}

// Example_detection shows the asynchronous conviction path: the
// client has already consumed a tampered answer optimistically, and
// the background audit surfaces a typed *EpochAuditFailure naming the
// epoch and the first bad global counter.
func Example_detection() {
	db := vdb.New(0)
	srv := proto2.NewServer(db)
	user := proto2.NewUser(1, db.Root(), 1<<20)

	var aud *audit.Auditor
	a, err := audit.New(audit.Config{
		User: user, Epoch: 4, Users: 1,
		Publish: func(r audit.Report) error { aud.SubmitReport(r); return nil },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	aud = a
	defer a.Stop()

	for i := 0; i < 3; i++ {
		op := &vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}
		resp, err := srv.HandleOp(user.Request(op))
		if err != nil {
			fmt.Println(err)
			return
		}
		if i == 1 { // the server lies about the second answer
			resp.Answer = append([]byte(nil), resp.Answer...)
			resp.Answer[0] ^= 0xff
		}
		if err := a.Submit(audit.Record{Op: op, Resp: resp}); err != nil {
			break // terminal failure already visible to the hot path
		}
	}
	_ = a.WaitDrained(10 * time.Second)

	var ef *audit.EpochAuditFailure
	fmt.Println("typed failure:", errors.As(a.Err(), &ef))
	fmt.Println("epoch:", ef.Epoch, "first bad counter:", ef.Ctr)
	// Output:
	// typed failure: true
	// epoch: 0 first bad counter: 2
}
