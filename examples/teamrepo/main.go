// Teamrepo: a real networked deployment — a TCP tcvs server, a TCP
// broadcast hub, and four concurrent developers hammering the same
// repository under Protocol II with periodic synchronization. Shows
// the library's full production path: net transport, gob wire format,
// concurrent clients, up-to-date checks, tags and history, all
// verified per operation.
//
// Run with: go run ./examples/teamrepo
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trustedcvs"
)

// resolveKeepBoth resolves merge conflicts by keeping both sides'
// lines (the right call for append-only shared files).
func resolveKeepBoth(merged []byte) []byte {
	var out []byte
	for _, line := range strings.SplitAfter(string(merged), "\n") {
		t := strings.TrimSuffix(line, "\n")
		if strings.HasPrefix(t, "<<<<<<<") || t == "=======" || strings.HasPrefix(t, ">>>>>>>") {
			continue
		}
		out = append(out, line...)
	}
	return out
}

func main() {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol:  trustedcvs.ProtocolII,
		Users:     4,
		SyncEvery: 10,
		Network:   true, // real TCP sockets on localhost
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("server on %s, hub on %s\n", cluster.ServerAddr(), cluster.HubAddr())

	const nDevs = 4
	devs := make([]*trustedcvs.Repo, nDevs)
	for i := range devs {
		devs[i] = cluster.Repo(i, fmt.Sprintf("dev%d", i))
	}

	// Initial import by dev0.
	if _, err := devs[0].Commit(map[string][]byte{
		"Makefile": []byte("all:\n\tgo build ./...\n"),
		"main.go":  []byte("package main\n"),
	}, "initial import", nil); err != nil {
		log.Fatal(err)
	}

	// Four developers working concurrently on their own files plus a
	// contended shared file with up-to-date checks.
	var wg sync.WaitGroup
	var conflicts atomic.Int64
	for d := 0; d < nDevs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			repo := devs[d]
			for i := 0; i < 8; i++ {
				// Private file: always clean.
				if _, err := repo.Commit(map[string][]byte{
					fmt.Sprintf("pkg%d/impl.go", d): []byte(fmt.Sprintf("package pkg%d // iteration %d\n", d, i)),
				}, "private work", nil); err != nil {
					log.Fatalf("dev%d: %v", d, err)
				}
				// Shared file: the real CVS workflow. Check out the
				// head, append a line locally, and commit with the
				// up-to-date check. If someone else landed first,
				// `update` three-way-merges their head into the local
				// edit (appends to a shared log merge cleanly) and the
				// commit is retried against the new head.
				head, err := repo.Checkout("main.go")
				if err != nil {
					log.Fatalf("dev%d checkout: %v", d, err)
				}
				st, err := repo.Status("main.go")
				if err != nil {
					log.Fatalf("dev%d status: %v", d, err)
				}
				base := st[0].Rev
				local := append(append([]byte(nil), head["main.go"]...),
					[]byte(fmt.Sprintf("// dev%d was here (#%d)\n", d, i))...)
				for {
					_, err := repo.Commit(map[string][]byte{"main.go": local},
						"shared edit", map[string]uint64{"main.go": base})
					if err == nil {
						break
					}
					if !errors.Is(err, trustedcvs.ErrConflict) {
						log.Fatalf("dev%d shared commit: %v", d, err)
					}
					conflicts.Add(1)
					up, err := repo.Update("main.go", local, base)
					if err != nil {
						log.Fatalf("dev%d update: %v", d, err)
					}
					merged := up.Merged
					if up.Conflicts > 0 {
						// Concurrent appends at the same spot conflict;
						// for a log-style file the resolution is "keep
						// both sides" — drop the markers.
						merged = resolveKeepBoth(merged)
					}
					local, base = merged, up.HeadRev
				}
			}
		}(d)
	}
	wg.Wait()

	// Let any in-flight sync round complete cleanly.
	for _, repo := range devs {
		if err := repo.WaitIdle(10 * time.Second); err != nil {
			log.Fatalf("sync failed on an honest server: %v", err)
		}
	}

	// Tag the result and inspect history.
	if _, err := devs[0].Tag("MILESTONE_1", "main.go", "Makefile"); err != nil {
		log.Fatal(err)
	}
	history, err := devs[1].Log("main.go")
	if err != nil {
		log.Fatal(err)
	}
	files, err := devs[2].List()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrepository after the sprint (every byte below was verified):\n")
	for _, f := range files {
		fmt.Printf("  %-16s rev %d\n", f.Path, f.Rev)
	}
	fmt.Printf("main.go history: %d revisions; %d up-to-date conflicts were retried\n", len(history), conflicts.Load())
	fmt.Printf("head of main.go: %q by %s\n", history[0].Log, history[0].Author)

	old, err := devs[3].CheckoutRev(1, "main.go")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revision 1 of main.go still reconstructs: %q\n", old["main.go"])

	tagged, err := devs[0].CheckoutTag("MILESTONE_1", "main.go")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MILESTONE_1 of main.go: %q\n", tagged["main.go"])
}
