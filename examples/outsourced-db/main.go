// Outsourced database: the paper's second motivating scenario — "a
// common database maintained by an untrusted third-party vendor,
// operated upon by several clients". Three branch offices keep a
// shared key-value inventory at a vendor; Protocol II gives them
// per-operation integrity proofs and fork detection without trusting
// the vendor at all. The vendor then quietly drops one office's update
// — and is caught at the next synchronization.
//
// Run with: go run ./examples/outsourced-db
package main

import (
	"fmt"
	"log"
	"time"

	"trustedcvs"
)

func main() {
	// The vendor drops the 7th operation: it confirms the write with a
	// perfect proof, then discards it.
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol:  trustedcvs.ProtocolII,
		Users:     3,
		SyncEvery: 5,
		Malice:    trustedcvs.Malice{Behavior: "drop-update", TriggerOp: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	offices := []string{"Berlin", "Singapore", "Toronto"}

	// The offices use the raw verified key-value API (the database
	// model of Section 2.1) rather than the CVS layer.
	set := func(office int, key, val string) error {
		_, err := cluster.Do(office, &trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: key, Val: []byte(val)}}})
		return err
	}
	get := func(office int, key string) (string, bool, error) {
		ans, err := cluster.Do(office, &trustedcvs.ReadOp{Keys: []string{key}})
		if err != nil {
			return "", false, err
		}
		r := ans.(trustedcvs.ReadAnswer).Results[0]
		return string(r.Val), r.Found, nil
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	must(set(0, "stock/berlin/widgets", "120"))
	must(set(1, "stock/singapore/widgets", "75"))
	must(set(2, "stock/toronto/widgets", "44"))
	fmt.Println("all offices seeded their inventory (each write proven by the vendor)")

	v, ok, err := get(0, "stock/singapore/widgets")
	must(err)
	fmt.Printf("%s reads %s's stock: %s (found=%v, proof verified)\n", offices[0], offices[1], v, ok)

	// Operations 5-7; the 7th (Toronto's restock) gets dropped.
	must(set(1, "stock/singapore/widgets", "60"))
	must(set(0, "stock/berlin/widgets", "130"))
	must(set(2, "stock/toronto/widgets", "200")) // confirmed... and discarded
	fmt.Println("Toronto restocked to 200 — the vendor confirmed it with a valid proof, then dropped it")

	// Work continues; the inconsistency is invisible per operation but
	// cannot survive a synchronization round.
	var detection error
	for i := 0; detection == nil && i < 10; i++ {
		detection = set(i%3, fmt.Sprintf("audit/ping-%d", i), "x")
		if detection == nil {
			for u := range offices {
				if err := cluster.WaitIdle(u, 5*time.Second); err != nil {
					detection = err
					break
				}
			}
		}
	}
	de, isDetection := trustedcvs.AsDetection(detection)
	if !isDetection {
		log.Fatalf("the dropped update was never detected: %v", detection)
	}
	fmt.Printf("\nDETECTED: %v\n", de)
	fmt.Println("the offices' XOR registers do not close a single state chain — the vendor is exposed")
}
