// Partition attack: an end-to-end reproduction of Figure 1. A US
// programmer and a Chinese programmer share a repository; the
// malicious server forks the repository so that the Chinese side never
// learns about the US side's change to Common.h — and every individual
// operation still verifies perfectly on both sides. The attack
// survives exactly until the users synchronize over their broadcast
// channel (Theorem 3.1: without that channel it would survive
// forever).
//
// Run with: go run ./examples/partition-attack
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"trustedcvs"
)

func main() {
	// The server forks just before operation 3 (the US commit of
	// Common.h), serving user 1 (China) from the pre-commit state.
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol:  trustedcvs.ProtocolII,
		Users:     2,
		SyncEvery: 6,
		Malice: trustedcvs.Malice{
			Behavior:  "fork",
			TriggerOp: 3,
			GroupB:    []trustedcvs.UserID{1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	us := cluster.Repo(0, "us-dev")
	cn := cluster.Repo(1, "cn-dev")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Ops 1-2: both programmers seed their areas (shared history).
	_, err = us.Commit(map[string][]byte{"us/main.c": []byte("int main(){}\n")}, "us skeleton", nil)
	must(err)
	_, err = cn.Commit(map[string][]byte{"cn/driver.c": []byte("void drive(){}\n")}, "cn skeleton", nil)
	must(err)

	// Op 3 = t1: the US programmer changes the shared header and goes
	// offline. The server forks HERE.
	_, err = us.Commit(map[string][]byte{"Common.h": []byte("#define PROTOCOL_VERSION 2\n")}, "bump protocol version", nil)
	must(err)
	fmt.Println("us-dev committed Common.h (t1) — fully verified — and went offline")

	// Op 4 = t2: the Chinese programmer looks for Common.h. On the
	// fork it does not exist — and the server PROVES its absence.
	_, err = cn.Checkout("Common.h")
	if !errors.Is(err, trustedcvs.ErrNoFile) {
		log.Fatalf("expected a proven absence, got %v", err)
	}
	fmt.Println("cn-dev checkout Common.h: proven absent (the fork hides t1 with a valid proof!)")

	// The Chinese programmer keeps working, every operation verified.
	for i := 0; i < 2; i++ {
		_, err := cn.Commit(map[string][]byte{"cn/util.c": []byte(fmt.Sprintf("int util_%d;\n", i))}, "cn work", nil)
		must(err)
		fmt.Printf("cn-dev commit %d verified fine (still inside the partition)\n", i+1)
	}

	// The US programmer comes back; work continues until someone's
	// k-th operation triggers the synchronization round.
	fmt.Println("\nus-dev back online; operations continue until a sync-up triggers...")
	var detection error
	for i := 0; detection == nil && i < 20; i++ {
		_, err := us.Commit(map[string][]byte{"us/main.c": []byte(fmt.Sprintf("int main(){return %d;}\n", i))}, "us work", nil)
		if err != nil {
			detection = err
			break
		}
		if err := us.WaitIdle(5 * time.Second); err != nil {
			detection = err
			break
		}
		if err := cn.Err(); err != nil {
			detection = err
			break
		}
	}
	de, ok := trustedcvs.AsDetection(detection)
	if !ok {
		log.Fatalf("partition was not detected: %v", detection)
	}
	fmt.Printf("\nDETECTED at synchronization: %v\n", de)
	fmt.Println("the XOR registers of the two partitions do not close a single state chain (Lemma 4.1)")
}
