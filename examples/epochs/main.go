// Epochs: detection on an epoch cadence, two ways.
//
// The default run is Protocol III in action. Two developers in
// opposite time zones are NEVER online at the same time, so no
// broadcast channel is possible — instead they store signed epoch
// summaries on the server itself, and a rotating checker audits each
// epoch two epochs later. A forking server is caught within two
// epochs (Theorem 4.3).
//
// With -audit, the *epoch-audit* variant of Protocol II instead
// (AUDIT.md): the developers do share a broadcast channel, but
// verification moves off the hot path — every answer is released
// immediately and a background auditor verifies it, closing one epoch
// of N global operations at a time. A forged answer is consumed
// optimistically and convicted within one epoch.
//
// Run with: go run ./examples/epochs [-audit]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"trustedcvs"
	"trustedcvs/internal/audit"
)

func main() {
	auditMode := flag.Bool("audit", false, "run the Protocol II epoch-audit variant (AUDIT.md) instead of Protocol III")
	flag.Parse()
	if *auditMode {
		runEpochAudit()
		return
	}
	runProtocolIII()
}

// runEpochAudit demonstrates verification off the hot path: answers
// return immediately, the background auditor convicts the fork
// within one epoch of N global operations.
func runEpochAudit() {
	const epochLen = 8
	// The server forks at the 5th operation — in epoch 0. Each branch
	// stays internally consistent, so every individual answer verifies;
	// only the per-epoch closure check can see the contradiction.
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol:   trustedcvs.ProtocolII,
		Users:      2,
		AuditEpoch: epochLen,
		Malice: trustedcvs.Malice{
			Behavior:  "fork",
			TriggerOp: 5,
			GroupB:    []trustedcvs.UserID{1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	day := cluster.Repo(0, "day-shift")
	night := cluster.Repo(1, "night-shift")
	repos := []*trustedcvs.Repo{day, night}

	fmt.Printf("epoch-audit mode: answers release immediately, audit closes one epoch of %d global ops at a time\n", epochLen)

	var detection error
	opsAfterForgery := 0
	for i := 0; i < 4*epochLen && detection == nil; i++ {
		repo := repos[i%2]
		file := fmt.Sprintf("notes-%d.txt", i%2)
		_, err := repo.Commit(map[string][]byte{file: []byte(fmt.Sprintf("op %d\n", i))}, "work", nil)
		if err != nil {
			detection = err
			break
		}
		if i+1 >= 5 {
			// This op completed AFTER the forged answer: the optimistic
			// window in action. The forgery is already queued for audit.
			opsAfterForgery++
		}
	}
	if detection == nil {
		// The hot path never observed the failure (it can finish its
		// work inside the optimistic window); sealing forces the final
		// epoch closure, which must convict.
		cluster.Seal()
		detection = cluster.WaitSealed(10 * time.Second)
	}

	de, ok := trustedcvs.AsDetection(detection)
	if !ok {
		log.Fatalf("expected a detection, got: %v", detection)
	}
	var ef *audit.EpochAuditFailure
	if !errors.As(detection, &ef) {
		log.Fatalf("detection is not a typed epoch-audit failure: %v", detection)
	}
	fmt.Printf("\n%d operations completed on the forked history before conviction — that is the optimistic window\n", opsAfterForgery)
	where := "the whole epoch (closure-level check)"
	if ef.Ctr != 0 {
		where = fmt.Sprintf("first bad global counter %d", ef.Ctr)
	}
	fmt.Printf("CONVICTED asynchronously: epoch %d, %s, class %v\n", ef.Epoch, where, de.Class)
	if opsAfterForgery > 2*epochLen {
		log.Fatalf("exposure %d ops exceeds the one-epoch bound (N=%d)", opsAfterForgery, epochLen)
	}
	fmt.Printf("detection weakened exactly as specified: from 'before the next op' to 'within one epoch' (k = N = %d)\n", epochLen)
	fmt.Println("(see AUDIT.md for the trust model delta and the backpressure contract)")
}

// runProtocolIII is the original demo: Protocol III, no user-to-user
// communication at all.
func runProtocolIII() {
	// The server forks in epoch 1: the night-shift developer gets a
	// diverged copy of the repository.
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolIII,
		Users:    2,
		Malice: trustedcvs.Malice{
			Behavior:  "fork",
			TriggerOp: 5, // first ops of epoch 1
			GroupB:    []trustedcvs.UserID{1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	day := cluster.Repo(0, "day-shift")
	night := cluster.Repo(1, "night-shift")

	// Each epoch: the day shift works (two ops) and goes offline; the
	// night shift works (two ops) and goes offline; the epoch ends.
	// They are never online together.
	workday := func(epoch int, repo *trustedcvs.Repo, who, file string) error {
		if _, err := repo.Commit(map[string][]byte{file: []byte(fmt.Sprintf("%s epoch %d\n", who, epoch))}, "work", nil); err != nil {
			return err
		}
		_, err := repo.Checkout(file)
		return err
	}

	var detection error
	var detectedEpoch int
	for epoch := 0; detection == nil; epoch++ {
		fmt.Printf("epoch %d: day shift works...", epoch)
		if detection = workday(epoch, day, "day", "day/notes.txt"); detection != nil {
			detectedEpoch = epoch
			break
		}
		fmt.Printf(" night shift works...")
		if detection = workday(epoch, night, "night", "night/notes.txt"); detection != nil {
			detectedEpoch = epoch
			break
		}
		fmt.Println(" epoch ends")
		cluster.AdvanceEpoch()
		if epoch > 6 {
			log.Fatal("fork was never detected — Theorem 4.3 violated")
		}
	}

	de, ok := trustedcvs.AsDetection(detection)
	if !ok {
		log.Fatalf("unexpected error: %v", detection)
	}
	fmt.Printf("\nDETECTED in epoch %d by %v: %v\n", detectedEpoch, de.User, de.Class)
	// Theorem 4.3: a fault in epoch 1 must be caught by epoch 3.
	if detectedEpoch > 3 {
		log.Fatalf("detection too late: epoch %d", detectedEpoch)
	}
	fmt.Println("the fork happened in epoch 1; detection within two epochs, with NO user-to-user communication")
	fmt.Println("(the signed epoch summaries stored on the server did the broadcasting)")
}
