// Epochs: Protocol III in action. Two developers in opposite time
// zones are NEVER online at the same time, so no broadcast channel is
// possible — instead they store signed epoch summaries on the server
// itself, and a rotating checker audits each epoch two epochs later.
// A forking server is caught within two epochs (Theorem 4.3).
//
// Run with: go run ./examples/epochs
package main

import (
	"fmt"
	"log"

	"trustedcvs"
)

func main() {
	// The server forks in epoch 1: the night-shift developer gets a
	// diverged copy of the repository.
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolIII,
		Users:    2,
		Malice: trustedcvs.Malice{
			Behavior:  "fork",
			TriggerOp: 5, // first ops of epoch 1
			GroupB:    []trustedcvs.UserID{1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	day := cluster.Repo(0, "day-shift")
	night := cluster.Repo(1, "night-shift")

	// Each epoch: the day shift works (two ops) and goes offline; the
	// night shift works (two ops) and goes offline; the epoch ends.
	// They are never online together.
	workday := func(epoch int, repo *trustedcvs.Repo, who, file string) error {
		if _, err := repo.Commit(map[string][]byte{file: []byte(fmt.Sprintf("%s epoch %d\n", who, epoch))}, "work", nil); err != nil {
			return err
		}
		_, err := repo.Checkout(file)
		return err
	}

	var detection error
	var detectedEpoch int
	for epoch := 0; detection == nil; epoch++ {
		fmt.Printf("epoch %d: day shift works...", epoch)
		if detection = workday(epoch, day, "day", "day/notes.txt"); detection != nil {
			detectedEpoch = epoch
			break
		}
		fmt.Printf(" night shift works...")
		if detection = workday(epoch, night, "night", "night/notes.txt"); detection != nil {
			detectedEpoch = epoch
			break
		}
		fmt.Println(" epoch ends")
		cluster.AdvanceEpoch()
		if epoch > 6 {
			log.Fatal("fork was never detected — Theorem 4.3 violated")
		}
	}

	de, ok := trustedcvs.AsDetection(detection)
	if !ok {
		log.Fatalf("unexpected error: %v", detection)
	}
	fmt.Printf("\nDETECTED in epoch %d by %v: %v\n", detectedEpoch, de.User, de.Class)
	// Theorem 4.3: a fault in epoch 1 must be caught by epoch 3.
	if detectedEpoch > 3 {
		log.Fatalf("detection too late: epoch %d", detectedEpoch)
	}
	fmt.Println("the fork happened in epoch 1; detection within two epochs, with NO user-to-user communication")
	fmt.Println("(the signed epoch summaries stored on the server did the broadcasting)")
}
