// Quickstart: three users share a CVS repository hosted on an
// untrusted server, commit and check out files under Protocol II, and
// then watch the protocol catch the server lying about an answer.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"trustedcvs"
)

func main() {
	// One untrusted server, three users. The server will start
	// tampering with answers from its 8th operation on.
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol:  trustedcvs.ProtocolII,
		Users:     3,
		SyncEvery: 16,
		Malice:    trustedcvs.Malice{Behavior: "tamper-answer", TriggerOp: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	alice := cluster.Repo(0, "alice")
	bob := cluster.Repo(1, "bob")
	carol := cluster.Repo(2, "carol")

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Normal verified CVS usage.
	_, err = alice.Commit(map[string][]byte{
		"README":      []byte("Trusted CVS quickstart\n"),
		"src/main.go": []byte("package main\n\nfunc main() {}\n"),
	}, "initial import", nil)
	must(err)
	fmt.Println("alice committed README and src/main.go (server proved both writes)")

	got, err := bob.Checkout("README")
	must(err)
	fmt.Printf("bob checked out README: %q (content hash verified)\n", got["README"])

	_, err = carol.Commit(map[string][]byte{"README": []byte("Trusted CVS quickstart — edited by carol\n")}, "edit", nil)
	must(err)

	history, err := alice.Log("README")
	must(err)
	fmt.Printf("alice sees %d authenticated revisions of README; head by %s\n", len(history), history[0].Author)

	// The server begins tampering; the very first forged answer is
	// caught during verification.
	fmt.Println("\n(server begins tampering with answers...)")
	users := []*trustedcvs.Repo{alice, bob, carol}
	for i := 0; ; i++ {
		_, err := users[i%3].Checkout("README")
		if err != nil {
			de, ok := trustedcvs.AsDetection(err)
			if !ok {
				log.Fatalf("unexpected error: %v", err)
			}
			fmt.Printf("DETECTED: %v\n", de)
			fmt.Println("the detecting user now leaves the server and alerts the others (Section 2.2.1)")
			return
		}
		fmt.Printf("checkout %d verified fine\n", i+1)
	}
}
