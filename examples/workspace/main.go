// Workspace: the verified working-copy workflow — two developers with
// real sandbox directories on disk, editing the same file from the
// same base revision. The loser of the commit race runs `update`,
// gets a verified three-way merge, and lands on top. Every byte that
// reaches either sandbox was proven by the untrusted server.
//
// Run with: go run ./examples/workspace
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"trustedcvs"
)

func main() {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 2, SyncEvery: 32})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	alice := cluster.Repo(0, "alice")
	bob := cluster.Repo(1, "bob")

	dirA, err := os.MkdirTemp("", "tcvs-alice-*")
	must(err)
	dirB, err := os.MkdirTemp("", "tcvs-bob-*")
	must(err)
	defer os.RemoveAll(dirA)
	defer os.RemoveAll(dirB)

	// Alice seeds the project from her sandbox.
	wsA, err := alice.Workspace(dirA)
	must(err)
	must(os.WriteFile(filepath.Join(dirA, "design.md"), []byte("# Design\n\ngoals\n\nnon-goals\n"), 0o644))
	must(wsA.Add("design.md"))
	_, err = wsA.Commit("import design doc")
	must(err)
	fmt.Println("alice imported design.md (revision 1, proven by the server)")

	// Bob checks out into his own sandbox.
	wsB, err := bob.Workspace(dirB)
	must(err)
	must(wsB.CheckoutAll(""))
	fmt.Printf("bob's sandbox %s tracks %v\n", dirB, wsB.Tracked())

	// Both edit revision 1: alice expands the goals, bob the
	// non-goals. Alice commits first.
	must(os.WriteFile(filepath.Join(dirA, "design.md"),
		[]byte("# Design\n\ngoals\n- verify every byte\n\nnon-goals\n"), 0o644))
	_, err = wsA.Commit("flesh out goals")
	must(err)

	must(os.WriteFile(filepath.Join(dirB, "design.md"),
		[]byte("# Design\n\ngoals\n\nnon-goals\n- trusting the server\n"), 0o644))

	// Bob's status shows the problem; update merges alice's work in.
	states, err := wsB.Status()
	must(err)
	fmt.Printf("bob's status: modified=%v needs-update=%v\n", states[0].Modified, states[0].OutOfDate)

	reports, err := wsB.Update()
	must(err)
	fmt.Printf("bob's update: %s (conflicts: %d)\n", reports[0].Action, reports[0].Conflicts)

	_, err = wsB.Commit("flesh out non-goals")
	must(err)

	// Alice refreshes and reads the combined document.
	_, err = wsA.Update()
	must(err)
	final, err := os.ReadFile(filepath.Join(dirA, "design.md"))
	must(err)
	fmt.Printf("\nfinal design.md (both edits, all verified):\n%s", final)

	// Blame proves who wrote what.
	origins, err := alice.Annotate("design.md")
	must(err)
	fmt.Println("\nblame:")
	for _, o := range origins {
		fmt.Printf("  rev %d %-6s %s", o.Rev, o.Author, o.Line)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
