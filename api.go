package trustedcvs

import (
	"trustedcvs/internal/adversary"
	"trustedcvs/internal/core"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/diff"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/forensics"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/workspace"
)

// Core identity and data types, re-exported for the public API.
type (
	// UserID identifies a protocol participant.
	UserID = sig.UserID
	// Digest is a 32-byte SHA-256 commitment.
	Digest = digest.Digest
	// Op is a deterministic, verifiable database transaction. The CVS
	// operations and the raw key-value operations below implement it.
	Op = vdb.Op
	// KV is a key-value pair for raw WriteOps.
	KV = vdb.KV
	// ReadOp / WriteOp / RangeOp are the raw key-value transactions
	// of the paper's "database of items" model (the outsourcing
	// scenario uses them directly).
	ReadOp  = vdb.ReadOp
	WriteOp = vdb.WriteOp
	RangeOp = vdb.RangeOp
	// CASOp is a verified compare-and-swap: the conditional runs
	// inside the replayed transaction, so the untrusted server cannot
	// lie about whether the swap happened.
	CASOp = vdb.CASOp
	// ReadAnswer / WriteAnswer / RangeAnswer / CASAnswer are their
	// answers.
	ReadAnswer  = vdb.ReadAnswer
	WriteAnswer = vdb.WriteAnswer
	RangeAnswer = vdb.RangeAnswer
	CASAnswer   = vdb.CASAnswer

	// CrossOp is an atomic cross-shard transaction on a Merkle forest
	// (ClusterConfig.Shards > 1): each leg runs on the shard its keys
	// route to, all legs commit in one counter window, and the legs'
	// proofs are bound by a transaction digest so the server cannot
	// commit one leg and drop another undetected. On a single-shard
	// database it degrades to an ordinary composite operation.
	CrossOp = vdb.CrossOp
	// CrossAnswer carries one answer per leg.
	CrossAnswer = vdb.CrossAnswer

	// DetectionError reports a proven server deviation: which check
	// fired, which user detected it, after how many local operations.
	DetectionError = core.DetectionError
	// DetectionClass enumerates the protocol checks.
	DetectionClass = core.DetectionClass

	// FileStatus, RevisionRecord, CommitResult and RemoveResult are
	// the CVS layer's authenticated answers.
	FileStatus     = cvs.FileStatus
	RevisionRecord = cvs.RevisionRecord
	CommitResult   = cvs.CommitResult
	RemoveResult   = cvs.RemoveResult

	// Patch is a verified line diff between two revisions
	// (Repo.Diff).
	Patch = diff.Patch

	// LineOrigin is one line's blame attribution (Repo.Annotate).
	LineOrigin = cvs.LineOrigin

	// UpdateResult is a `cvs update` three-way merge outcome
	// (Repo.Update).
	UpdateResult = cvs.UpdateResult

	// ForensicsReport localizes a detected fault to the forged
	// operation slot and the diverged branches (Cluster.Forensics;
	// requires ClusterConfig.JournalCap).
	ForensicsReport = forensics.Report

	// Evidence is a self-authenticating proof of server equivocation:
	// two signed commitments that cannot both belong to one honest
	// history (Cluster.WitnessEvidence; requires
	// ClusterConfig.Witnesses).
	Evidence = forensics.Evidence

	// Workspace is a verified working copy (Repo.Workspace): a local
	// directory with tracked base revisions, status, three-way-merge
	// update, and atomic commits.
	Workspace = workspace.Workspace
	// WorkspaceFileState and WorkspaceUpdateReport are its reports.
	WorkspaceFileState    = workspace.FileState
	WorkspaceUpdateReport = workspace.UpdateReport
)

// HasConflictMarkers reports whether merged content still contains
// unresolved conflict markers.
func HasConflictMarkers(doc string) bool { return diff.HasConflictMarkers(doc) }

// Protocol selects one of the paper's three protocols.
type Protocol = server.Protocol

// The three protocols of Section 4.
const (
	ProtocolI   = server.P1
	ProtocolII  = server.P2
	ProtocolIII = server.P3
)

// Detection classes (see core documentation for details).
const (
	BadVO             = core.BadVO
	BadAnswer         = core.BadAnswer
	BadSignature      = core.BadSignature
	CounterReplay     = core.CounterReplay
	SyncMismatch      = core.SyncMismatch
	EpochViolation    = core.EpochViolation
	ProtocolViolation = core.ProtocolViolation
	WitnessDivergence = core.WitnessDivergence
	TornTransaction   = core.TornTransaction
)

// AsDetection extracts a DetectionError from an error chain, reporting
// whether the error proves server deviation.
func AsDetection(err error) (*DetectionError, bool) { return core.AsDetection(err) }

// ErrConflict is returned by Repo.Commit when a CVS up-to-date check
// failed (another user committed first); it is an ordinary CVS
// conflict, not a server deviation.
var ErrConflict = cvs.ErrConflict

// ErrNoFile is returned when checking out a path that does not exist.
var ErrNoFile = cvs.ErrNoFile

// Malice configures a deliberately misbehaving server for demos,
// tests, and the attack experiments. The zero value is honest.
type Malice struct {
	// Behavior is one of: "", "honest", "fork", "replay-stale",
	// "drop-update", "tamper-answer", "tamper-state", "counter-replay",
	// "stall-epochs", "withhold-backup", "torn-commit".
	Behavior string
	// TriggerOp is the 1-based operation index at which the behavior
	// activates.
	TriggerOp uint64
	// GroupB (fork) is served from the forked history.
	GroupB []UserID
	// Target is the victim of replay-stale / withhold-backup.
	Target UserID
}

func (m Malice) config() (*adversary.Config, error) {
	if m.Behavior == "" || m.Behavior == "honest" {
		return nil, nil
	}
	kinds := map[string]adversary.Kind{
		"fork":            adversary.Fork,
		"replay-stale":    adversary.ReplayStale,
		"drop-update":     adversary.DropUpdate,
		"tamper-answer":   adversary.TamperAnswer,
		"tamper-state":    adversary.TamperState,
		"counter-replay":  adversary.CounterReplay,
		"stall-epochs":    adversary.StallEpochs,
		"withhold-backup": adversary.WithholdBackup,
		"torn-commit":     adversary.TornCommit,
	}
	kind, ok := kinds[m.Behavior]
	if !ok {
		return nil, &UnknownBehaviorError{Behavior: m.Behavior}
	}
	cfg := &adversary.Config{Kind: kind, TriggerOp: m.TriggerOp, Target: m.Target}
	if kind == adversary.TamperState {
		cfg.Key, cfg.Value = "planted-by-server", []byte("evil")
	}
	if len(m.GroupB) > 0 {
		cfg.GroupB = make(map[UserID]bool, len(m.GroupB))
		for _, u := range m.GroupB {
			cfg.GroupB[u] = true
		}
	}
	return cfg, nil
}

// UnknownBehaviorError reports an unrecognized Malice.Behavior.
type UnknownBehaviorError struct{ Behavior string }

func (e *UnknownBehaviorError) Error() string {
	return "trustedcvs: unknown malicious behavior " + e.Behavior
}
