#!/bin/sh
# check.sh — the repo's full verification gate. Run it before every
# commit: formatting, vet, build, the repo's own invariant analyzer
# (tcvs-lint: hash discipline, lock narrowness, deterministic
# verification paths, checked errors, panic-free handlers, plus the
# interprocedural passes — verifyflow's untrusted-source → trusted-state
# taint check and lockorder's static lock-acquisition cycle check —
# and deadignore's stale-suppression sweep; -time prints per-pass
# wall-clock so a regressing pass is visible in CI logs), the whole
# test suite under the race detector (the pipelined server hot path
# and the fault/recovery suite — kill/restart, reconnect, resume — are
# only trustworthy race-clean), and a fuzz smoke over the five
# untrusted-input surfaces (wire frames, verification objects, diffs,
# snapshot files and journal segments read back from disk).
set -eux
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: needs formatting: $fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go run ./cmd/tcvs-lint -time ./...
go test -race ./...
# The full race run above already includes the fault and witness
# suites; this named pass keeps the PRs' acceptance scenarios one
# command away: kill/restart a live server mid-workload over faulty
# connections (E14), kill the primary for good — witness promotion,
# client failover, fork conviction by gossip, zero false alarms (E15) —
# the Merkle forest: 64 racing clients over sharded trees with a
# gap-free global permutation, torn cross-shard commits detected as
# typed evidence, and the E16 scaling sweep shape — and the epoch
# auditor: optimistic answers verified in batches, backpressure
# degrading to sync instead of dropping, adversaries convicted within
# one epoch (E17) — and the crash-durability matrix: obligations
# journaled before release, replayed through the verifier on reboot,
# tamper-before-crash convicted, journal I/O failure degrading to
# sync (E18) — and the overload layer: priority shedding with typed
# refusals before any state is touched, breaker probe storms bounded
# under 64-client concurrency, sheds never journaled and never audit
# obligations, degrade-to-sync sticky under concurrent shedding, and
# the E21 sweep's CI-scale run (E21).
go test -race -run 'Fault|Resilient|Resume|Recovery|Witness|E14|E15|Forest|Torn|E16|Audit|Epoch|E17|WAL|E18|Overload|Shed|Breaker|E21' ./internal/fault ./internal/transport ./internal/broadcast ./internal/server ./internal/witness ./internal/bench ./internal/core/proto2 ./internal/audit ./internal/driver ./internal/wal .

go test -run='^$' -fuzz='^FuzzFrameDecode$' -fuzztime=10s ./internal/wire
go test -run='^$' -fuzz='^FuzzVOVerify$' -fuzztime=10s ./internal/merkle
go test -run='^$' -fuzz='^FuzzDiffPatch$' -fuzztime=10s ./internal/diff
go test -run='^$' -fuzz='^FuzzSnapshotLoad$' -fuzztime=10s ./internal/server
go test -run='^$' -fuzz='^FuzzWALReplay$' -fuzztime=10s ./internal/wal
