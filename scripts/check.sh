#!/bin/sh
# check.sh — the repo's full verification gate. Run it before every
# commit: vet, build everything, then the whole test suite under the
# race detector (the pipelined server hot path is only trustworthy
# race-clean).
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...
