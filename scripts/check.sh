#!/bin/sh
# check.sh — the repo's full verification gate. Run it before every
# commit: formatting, vet, build, the repo's own invariant analyzer
# (tcvs-lint: hash discipline, lock narrowness, deterministic
# verification paths, checked errors, panic-free handlers), the whole
# test suite under the race detector (the pipelined server hot path is
# only trustworthy race-clean), and a fuzz smoke over the three
# untrusted-input surfaces (wire frames, verification objects, diffs).
set -eux
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: needs formatting: $fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go run ./cmd/tcvs-lint ./...
go test -race ./...

go test -run='^$' -fuzz='^FuzzFrameDecode$' -fuzztime=10s ./internal/wire
go test -run='^$' -fuzz='^FuzzVOVerify$' -fuzztime=10s ./internal/merkle
go test -run='^$' -fuzz='^FuzzDiffPatch$' -fuzztime=10s ./internal/diff
