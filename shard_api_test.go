package trustedcvs_test

import (
	"fmt"
	"testing"
	"time"

	"trustedcvs"
	"trustedcvs/internal/vdb"
)

// shardSplitKeys returns two keys routing to different shards of an
// n-shard forest (routing is a pure function of the key).
func shardSplitKeys(t *testing.T, n int) (string, string) {
	t.Helper()
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	for _, a := range keys {
		for _, b := range keys {
			if vdb.RouteKey(a, n) != vdb.RouteKey(b, n) {
				return a, b
			}
		}
	}
	t.Fatal("no key pair splits across shards")
	return "", ""
}

// TestForestCluster runs a sharded cluster end to end: CVS commits
// (colocated on one shard), raw key-value traffic across shards, a
// cross-shard transaction, and clean sync barriers throughout.
func TestForestCluster(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 3, SyncEvery: 8, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	alice := cluster.Repo(0, "alice")
	if _, err := alice.Commit(map[string][]byte{"README": []byte("forest\n")}, "import", nil); err != nil {
		t.Fatal(err)
	}
	files, err := cluster.Repo(1, "bob").Checkout("README")
	if err != nil {
		t.Fatal(err)
	}
	if string(files["README"]) != "forest\n" {
		t.Fatalf("checkout: %q", files["README"])
	}

	ka, kb := shardSplitKeys(t, 4)
	op := &trustedcvs.CrossOp{Legs: []trustedcvs.Op{
		&trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: ka, Val: []byte("left")}}},
		&trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: kb, Val: []byte("right")}}},
	}}
	ans, err := cluster.Do(1, op)
	if err != nil {
		t.Fatalf("cross op: %v", err)
	}
	if ca, ok := ans.(trustedcvs.CrossAnswer); !ok || len(ca.Answers) != 2 {
		t.Fatalf("cross answer: %#v", ans)
	}
	// Enough mixed traffic to cross several sync barriers.
	for i := 0; i < 20; i++ {
		if _, err := cluster.Do(i%3, &trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := cluster.WaitIdle(i, 5*time.Second); err != nil {
			t.Fatalf("user %d: %v", i, err)
		}
	}
}

// TestForestSingleShardCompat: Shards=1 must reproduce the classic
// single-tree behavior, including CrossOp degrading to an ordinary
// composite operation on the plain path.
func TestForestSingleShardCompat(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 2, SyncEvery: 4, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	op := &trustedcvs.CrossOp{Legs: []trustedcvs.Op{
		&trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: "a", Val: []byte("1")}}},
		&trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: "b", Val: []byte("2")}}},
	}}
	if _, err := cluster.Do(0, op); err != nil {
		t.Fatalf("cross op on single shard: %v", err)
	}
	ans, err := cluster.Do(1, &trustedcvs.ReadOp{Keys: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	ra := ans.(trustedcvs.ReadAnswer)
	if string(ra.Results[0].Val) != "1" || string(ra.Results[1].Val) != "2" {
		t.Fatalf("read-back: %+v", ra)
	}
	for i := 0; i < 2; i++ {
		if err := cluster.WaitIdle(i, 5*time.Second); err != nil {
			t.Fatalf("user %d: %v", i, err)
		}
	}
}

// TestForestTornCommitCluster is the satellite adversary scenario: the
// server commits one leg of a cross-shard transaction and drops the
// other. The committing client must raise the typed TornTransaction
// detection — distinct from single-shard tamper classes — before the
// next sync barrier.
func TestForestTornCommitCluster(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 2, SyncEvery: 64, Shards: 4,
		Malice: trustedcvs.Malice{Behavior: "torn-commit", TriggerOp: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ka, kb := shardSplitKeys(t, 4)
	if _, err := cluster.Do(0, &trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: ka, Val: []byte("seed")}}}); err != nil {
		t.Fatal(err)
	}
	// Op 2: the first cross-shard transaction at/after the trigger —
	// the one the server tears.
	op := &trustedcvs.CrossOp{Legs: []trustedcvs.Op{
		&trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: ka, Val: []byte("tx-left")}}},
		&trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: kb, Val: []byte("tx-right")}}},
	}}
	if _, err := cluster.Do(0, op); err != nil {
		t.Fatalf("the torn response alone should verify: %v", err)
	}
	// The victim's next operation is served from the history missing
	// the second leg; with SyncEvery=64 no sync barrier intervenes.
	_, err = cluster.Do(0, &trustedcvs.ReadOp{Keys: []string{ka}})
	de, ok := trustedcvs.AsDetection(err)
	if !ok {
		t.Fatalf("torn commit went undetected: %v", err)
	}
	if de.Class != trustedcvs.TornTransaction {
		t.Fatalf("detected class %v, want %v", de.Class, trustedcvs.TornTransaction)
	}
	if got := cluster.Err(0); got == nil {
		t.Fatal("victim's detection was not recorded as terminal")
	}
}

// TestForestConfigValidation: the forest rejects configurations its
// detection guarantees do not cover.
func TestForestConfigValidation(t *testing.T) {
	for _, cfg := range []trustedcvs.ClusterConfig{
		{Users: 1, Protocol: trustedcvs.ProtocolI, Shards: 4},
		{Users: 1, Protocol: trustedcvs.ProtocolIII, Shards: 4},
		{Users: 1, Protocol: trustedcvs.ProtocolII, Shards: 4, JournalCap: 8},
		{Users: 1, Protocol: trustedcvs.ProtocolII, Shards: -1},
		{Users: 1, Protocol: trustedcvs.ProtocolII, Shards: 100000},
	} {
		if _, err := trustedcvs.NewLocalCluster(cfg); err == nil {
			t.Fatalf("config %+v was accepted", cfg)
		}
	}
}
