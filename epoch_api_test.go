package trustedcvs_test

import (
	"fmt"
	"testing"
	"time"

	"trustedcvs"
	"trustedcvs/internal/core"
)

// TestClusterEpochAuditHonest runs an epoch-audit cluster — witnesses
// included — end to end: CVS commits and raw traffic return
// optimistically, the background auditors close every epoch, and the
// final seal covers the tail with zero false alarms.
func TestClusterEpochAuditHonest(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 3,
		AuditEpoch: 8, Witnesses: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	alice := cluster.Repo(0, "alice")
	if _, err := alice.Commit(map[string][]byte{"README": []byte("epoch\n")}, "import", nil); err != nil {
		t.Fatal(err)
	}
	files, err := cluster.Repo(1, "bob").Checkout("README")
	if err != nil {
		t.Fatal(err)
	}
	if string(files["README"]) != "epoch\n" {
		t.Fatalf("checkout: %q", files["README"])
	}
	for i := 0; i < 24; i++ {
		if _, err := cluster.Do(i%3, &trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Seal()
	if err := cluster.WaitSealed(10 * time.Second); err != nil {
		t.Fatalf("honest epoch cluster failed audit: %v", err)
	}
	st := cluster.AuditStats(0)
	if st.Epochs == 0 || st.Audited == 0 {
		t.Fatalf("auditor did no work: %+v", st)
	}
}

// TestClusterEpochAuditForest drives cross-shard transactions through
// a forest cluster in epoch-audit mode: GCtr-prefix cuts must induce
// consistent per-shard cuts, so the per-epoch forest closure stays
// clean.
func TestClusterEpochAuditForest(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 2,
		Shards: 4, AuditEpoch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ka, kb := shardSplitKeys(t, 4)
	for i := 0; i < 12; i++ {
		var op trustedcvs.Op = &trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}
		if i%3 == 0 {
			op = &trustedcvs.CrossOp{Legs: []trustedcvs.Op{
				&trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: ka, Val: []byte(fmt.Sprintf("l%d", i))}}},
				&trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: kb, Val: []byte(fmt.Sprintf("r%d", i))}}},
			}}
		}
		if _, err := cluster.Do(i%2, op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	cluster.Seal()
	if err := cluster.WaitSealed(10 * time.Second); err != nil {
		t.Fatalf("forest epoch audit: %v", err)
	}
}

// TestClusterEpochAuditMaliceDetected: a forking server against an
// epoch-audit cluster must still be convicted — asynchronously, by the
// epoch closure — with a typed detection, never an untyped error.
func TestClusterEpochAuditMaliceDetected(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 2,
		AuditEpoch: 4,
		Malice:     trustedcvs.Malice{Behavior: "fork", TriggerOp: 3, GroupB: []trustedcvs.UserID{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	for i := 0; i < 10; i++ {
		if _, err := cluster.Do(i%2, &trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}); err != nil {
			break
		}
	}
	cluster.Seal()
	err = cluster.WaitSealed(10 * time.Second)
	if err == nil {
		t.Fatal("fork not detected by epoch audit")
	}
	de, ok := core.AsDetection(err)
	if !ok {
		t.Fatalf("untyped failure: %v", err)
	}
	if de.Class != core.SyncMismatch {
		t.Fatalf("class %v, want SyncMismatch", de.Class)
	}
}

// TestClusterEpochAuditValidation: epoch audit is a Protocol II
// feature.
func TestClusterEpochAuditValidation(t *testing.T) {
	_, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolI, Users: 2, AuditEpoch: 8,
	})
	if err == nil {
		t.Fatal("AuditEpoch accepted on Protocol I")
	}
}
