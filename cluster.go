package trustedcvs

import (
	"fmt"
	"path/filepath"
	"time"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/audit"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core/proto1"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/core/proto3"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/driver"
	"trustedcvs/internal/forensics"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/witness"
	"trustedcvs/internal/workspace"
)

// ClusterConfig configures a cluster: one untrusted server plus a
// fixed user population.
type ClusterConfig struct {
	// Protocol selects Protocol I, II or III (default II).
	Protocol Protocol
	// Users is the population size (required, >= 1).
	Users int
	// SyncEvery is k, the synchronization period of Protocols I/II
	// (default 16).
	SyncEvery uint64
	// MerkleOrder is the B+-tree branching factor (0 = default).
	MerkleOrder int
	// Shards splits the item space into this many independently locked
	// Merkle trees folded under one signed root-of-roots (0 or 1 = the
	// classic single tree). Requires Protocol II; the per-user
	// transition journal (JournalCap) is single-tree only. CVS
	// operations colocate on one shard; raw key-value operations route
	// by key hash, and CrossOp spans shards atomically.
	Shards int
	// KeySeed seeds the deterministic demo key ring. Production
	// deployments generate keys with crypto/rand out of band; the
	// in-process cluster favors reproducibility.
	KeySeed int64
	// JournalCap enables per-user transition journals of this
	// capacity (Protocols I/II) for post-detection fault localization
	// — see Cluster.Forensics.
	JournalCap int
	// Malice makes the server misbehave (demos and tests).
	Malice Malice
	// Witnesses runs this many in-process witness nodes in a full
	// gossip mesh. The server publishes signed root commitments to all
	// of them, and every client cross-checks the roots it verified
	// against the witness quorum before acknowledging a sync round; a
	// divergence is a detection (witness-divergence) backed by a signed
	// evidence bundle. 0 disables witnessing.
	Witnesses int
	// CommitEvery is the commitment cadence in operations (0 = the
	// witness package default).
	CommitEvery uint64
	// Network, when true, runs the server, hub and clients over real
	// TCP sockets on localhost instead of in-process transports.
	Network bool
	// AuditEpoch switches Protocol II clients into epoch-audit mode:
	// operations return optimistically and a background auditor closes
	// one epoch of AuditEpoch global operations at a time. Detection
	// weakens from "before the next operation" to "within one epoch" —
	// the paper's k-bounded deviation knob made concrete (see AUDIT.md).
	// 0 keeps the synchronous barrier; SyncEvery is ignored for sync
	// scheduling when set (epoch closure replaces sync rounds). Requires
	// Protocol II.
	AuditEpoch uint64
	// AuditQueue is the epoch auditor's bounded queue capacity (0 = the
	// audit package default). A full queue degrades clients to the
	// audit rate; it never drops verification obligations.
	AuditQueue int
	// AuditWALRoot makes the epoch audit crash-durable: each client
	// journals its verification obligations under
	// AuditWALRoot/user-<i> before releasing the optimistic answer,
	// and a cluster rebuilt over the same root resumes from the
	// journals' cursors — replaying and re-verifying everything the
	// crash left unaudited. Requires AuditEpoch > 0 and Network mode
	// (resume rides the TCP hub's full-history replay).
	AuditWALRoot string
	// Overload arms server-side overload protection: a bounded,
	// priority-classed admission queue with an adaptive concurrency
	// limit that sheds excess load with typed wire.ErrOverloaded before
	// any protocol state is touched, plus deadline-aware dispatch that
	// refuses work whose propagated budget has already expired. The
	// zero AdmissionOptions selects the package defaults. Requires
	// Network mode: the in-process transport calls handlers directly
	// and never queues.
	Overload *transport.AdmissionOptions
	// Brownout lets each client's epoch auditor widen its admission
	// window up to this many epochs under sustained audit backlog (see
	// audit.Config.Brownout) — graceful degradation instead of hard
	// blocking when verification cannot keep up. 0 or 1 disables;
	// requires AuditEpoch > 0.
	Brownout int
}

// Cluster is a ready-to-use deployment: an (optionally malicious)
// server and n verified users. It is the embedding API the examples
// and tests build on; cmd/tcvs-server and cmd/tcvs are the equivalent
// standalone binaries.
type Cluster struct {
	cfg     ClusterConfig
	srv     server.Server
	tcp     *transport.Server
	hub     *broadcast.Hub
	tcpHub  *broadcast.HubServer
	clients []*driver.Client
	repos   []*cvs.Client

	witnesses []*witness.Node
	publisher *witness.Publisher
}

// NewLocalCluster builds a cluster per cfg.
func NewLocalCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Users < 1 {
		return nil, fmt.Errorf("trustedcvs: cluster needs at least one user")
	}
	if cfg.Protocol == 0 {
		cfg.Protocol = ProtocolII
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 16
	}
	if cfg.KeySeed == 0 {
		cfg.KeySeed = 1
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 || cfg.Shards > vdb.MaxShards {
		return nil, fmt.Errorf("trustedcvs: shard count %d out of range [1, %d]", cfg.Shards, vdb.MaxShards)
	}
	if cfg.Shards > 1 && cfg.Protocol != ProtocolII {
		return nil, fmt.Errorf("trustedcvs: a Merkle forest (%d shards) requires Protocol II", cfg.Shards)
	}
	if cfg.Shards > 1 && cfg.JournalCap > 0 {
		return nil, fmt.Errorf("trustedcvs: transition journals are single-tree only (Shards=1)")
	}
	if cfg.AuditEpoch > 0 && cfg.Protocol != ProtocolII {
		return nil, fmt.Errorf("trustedcvs: epoch-audit mode requires Protocol II")
	}
	if cfg.AuditWALRoot != "" && cfg.AuditEpoch == 0 {
		return nil, fmt.Errorf("trustedcvs: AuditWALRoot requires epoch-audit mode (AuditEpoch > 0)")
	}
	if cfg.AuditWALRoot != "" && !cfg.Network {
		return nil, fmt.Errorf("trustedcvs: AuditWALRoot requires Network mode (resume needs the TCP hub's history replay)")
	}
	if cfg.Overload != nil && !cfg.Network {
		return nil, fmt.Errorf("trustedcvs: Overload requires Network mode (the in-process transport has no admission queue)")
	}
	if cfg.Brownout > 1 && cfg.AuditEpoch == 0 {
		return nil, fmt.Errorf("trustedcvs: Brownout requires epoch-audit mode (AuditEpoch > 0)")
	}
	db := vdb.NewSharded(cfg.MerkleOrder, cfg.Shards)
	signers, ring, err := sig.DeterministicSigners(cfg.Users, cfg.KeySeed)
	if err != nil {
		return nil, err
	}

	var honest server.Server
	switch cfg.Protocol {
	case ProtocolI:
		honest = server.NewP1(db, proto1.Initialize(signers[0], db.Root()))
	case ProtocolII:
		honest = server.NewP2(db)
	case ProtocolIII:
		honest = server.NewP3(db)
	default:
		return nil, fmt.Errorf("trustedcvs: unknown protocol %v", cfg.Protocol)
	}
	srv := honest
	if advCfg, err := cfg.Malice.config(); err != nil {
		return nil, err
	} else if advCfg != nil {
		srv = adversary.Wrap(honest, *advCfg)
	}

	c := &Cluster{cfg: cfg, srv: srv}
	if cfg.Witnesses > 0 {
		wid, err := witness.NewIdentity("primary")
		if err != nil {
			return nil, err
		}
		every := cfg.CommitEvery
		if cfg.AuditEpoch > 0 && every == 0 {
			// Epoch-audit deployments default the commitment cadence to
			// the epoch length, aligned to the epoch grid, so every
			// closure check has a commitment from its own window.
			every = cfg.AuditEpoch
		}
		pub := witness.NewPublisher(wid, every)
		if cfg.AuditEpoch > 0 {
			pub.Align()
		}
		for i := 0; i < cfg.Witnesses; i++ {
			c.witnesses = append(c.witnesses, witness.NewNode(fmt.Sprintf("witness-%d", i), 0))
		}
		for i, n := range c.witnesses {
			n.Pin(wid.Name(), wid.Public())
			for j, peer := range c.witnesses {
				if j == i {
					continue
				}
				p := peer
				n.AddPeer(p.Name(), func() (transport.Caller, error) {
					return transport.NewInproc(p.Handler()), nil
				})
			}
			nn := n
			pub.AddWitness(nn.Name(), func() (transport.Caller, error) {
				return transport.NewInproc(nn.Handler()), nil
			})
		}
		c.publisher = pub
		// The hook sits outside the adversary wrapper: a server that
		// starts lying still publishes commitments for the history it
		// serves, which is exactly what the witnesses convict.
		srv = server.WithOpHook(srv, pub.OpApplied)
		c.srv = srv
	}
	store := cvs.NewStore()
	handler := driver.NewHandler(srv, store)

	dial := func() (transport.Caller, error) { return transport.NewInproc(handler), nil }
	join := func() (broadcast.Channel, error) { return c.localHub().Join(), nil }
	if cfg.Network {
		var topts transport.Options
		if cfg.Overload != nil {
			topts.Admission = transport.NewAdmission(*cfg.Overload)
			topts.Classify = driver.Classify
			topts.HandlerDeadline = driver.NewDeadlineHandler(srv, store)
		}
		ts, err := transport.ListenOpts("127.0.0.1:0", handler, topts)
		if err != nil {
			return nil, err
		}
		c.tcp = ts
		hs, err := broadcast.ListenHub("127.0.0.1:0")
		if err != nil {
			ts.Close()
			return nil, err
		}
		c.tcpHub = hs
		dial = func() (transport.Caller, error) { return transport.Dial(ts.Addr()) }
		join = func() (broadcast.Channel, error) { return broadcast.DialHub(hs.Addr()) }
		if cfg.AuditWALRoot != "" {
			// Durable clients need the resumable channel: a restarted
			// client's fresh session replays the hub's entire report
			// history, re-delivering every peer boundary report its
			// recovery must re-close epochs against.
			join = func() (broadcast.Channel, error) { return broadcast.DialHubResume(hs.Addr()), nil }
		}
	}

	for i := 0; i < cfg.Users; i++ {
		conn, err := dial()
		if err != nil {
			c.Close()
			return nil, err
		}
		var dc *driver.Client
		switch cfg.Protocol {
		case ProtocolI:
			bc, err := join()
			if err != nil {
				c.Close()
				return nil, err
			}
			u := proto1.NewUser(signers[i], ring, cfg.SyncEvery)
			if cfg.JournalCap > 0 {
				u.EnableJournal(cfg.JournalCap)
			}
			dc = driver.NewP1(u, conn, bc, cfg.Users)
		case ProtocolII:
			bc, err := join()
			if err != nil {
				c.Close()
				return nil, err
			}
			var u *proto2.User
			if cfg.Shards > 1 {
				u = proto2.NewForestUser(sig.UserID(i), db.ShardRoots(), cfg.SyncEvery)
			} else {
				u = proto2.NewUser(sig.UserID(i), db.Root(), cfg.SyncEvery)
			}
			if cfg.JournalCap > 0 {
				u.EnableJournal(cfg.JournalCap)
			}
			if cfg.AuditEpoch > 0 {
				walDir := ""
				if cfg.AuditWALRoot != "" {
					walDir = filepath.Join(cfg.AuditWALRoot, fmt.Sprintf("user-%d", i))
				}
				dc, err = driver.NewP2EpochWAL(u, conn, bc, cfg.Users, cfg.AuditEpoch, cfg.AuditQueue, walDir, nil)
				if err != nil {
					c.Close()
					return nil, err
				}
				if cfg.Brownout > 1 {
					dc.Audit().SetBrownout(cfg.Brownout)
				}
			} else {
				dc = driver.NewP2(u, conn, bc, cfg.Users)
			}
		case ProtocolIII:
			u := proto3.NewUser(signers[i], ring, db.Root())
			if cfg.JournalCap > 0 {
				u.EnableJournal(cfg.JournalCap)
			}
			dc = driver.NewP3(u, conn)
		}
		if c.publisher != nil {
			chk := witness.NewCheck("primary", c.publisher.Identity().Public(), 0)
			if cfg.AuditEpoch > 0 && 4*cfg.AuditEpoch > uint64(witness.DefaultCheckWindow) {
				// Verification lags up to one pipelined epoch behind the
				// hot path; keep boundary commitments inside the window.
				chk.SetWindow(int(4 * cfg.AuditEpoch))
			}
			for _, n := range c.witnesses {
				nn := n
				chk.AddWitness(nn.Name(), func() (transport.Caller, error) {
					return transport.NewInproc(nn.Handler()), nil
				})
			}
			dc.SetWitnessCheck(chk)
		}
		c.clients = append(c.clients, dc)
		c.repos = append(c.repos, cvs.NewClient(dc, dc, fmt.Sprintf("user%d", i), nil))
	}
	if cfg.Network {
		// Give the TCP hub a beat to register every subscriber before
		// any sync traffic flows.
		time.Sleep(50 * time.Millisecond)
	}
	return c, nil
}

func (c *Cluster) localHub() *broadcast.Hub {
	if c.hub == nil {
		c.hub = broadcast.NewHub()
	}
	return c.hub
}

// Repo returns user i's verified CVS interface with the given author
// name (see Repo's methods: Commit, Checkout, Log, ...).
func (c *Cluster) Repo(i int, author string) *Repo {
	dc := c.clients[i]
	return &Repo{Client: cvs.NewClient(dc, dc, author, nil), driver: dc}
}

// Do executes one raw verified key-value operation as user i — the
// outsourced-database usage of the paper's introduction.
func (c *Cluster) Do(i int, op Op) (any, error) {
	return c.clients[i].Do(op)
}

// WaitIdle blocks until user i has no synchronization round in flight,
// returning any recorded detection.
func (c *Cluster) WaitIdle(i int, timeout time.Duration) error {
	return c.clients[i].WaitIdle(timeout)
}

// Err returns user i's recorded detection error, if any.
func (c *Cluster) Err(i int) error { return c.clients[i].Err() }

// Seal publishes every client's final registers (epoch-audit mode):
// no client will issue further operations, and the auditors may close
// the tail window. No-op for synchronous clusters.
func (c *Cluster) Seal() {
	for _, cl := range c.clients {
		cl.Seal()
	}
}

// WaitSealed blocks until every client's auditor has passed the
// all-sealed final closure check (call Seal first), returning the
// first failure. For synchronous clusters it reduces to Err.
func (c *Cluster) WaitSealed(timeout time.Duration) error {
	for _, cl := range c.clients {
		if err := cl.WaitSealed(timeout); err != nil {
			return err
		}
	}
	return nil
}

// AuditStats returns user i's epoch-auditor counters (zero value for
// synchronous clusters).
func (c *Cluster) AuditStats(i int) audit.Stats {
	if a := c.clients[i].Audit(); a != nil {
		return a.Stats()
	}
	return audit.Stats{}
}

// AdvanceEpoch moves a Protocol III server into the next epoch (the
// cluster owner stands in for the wall-clock timer).
func (c *Cluster) AdvanceEpoch() { c.srv.AdvanceEpoch() }

// AdmissionStats snapshots the TCP server's admission controller
// (zero stats when Overload is not configured or the cluster is
// in-process).
func (c *Cluster) AdmissionStats() transport.AdmissionStats {
	if c.tcp == nil {
		return transport.AdmissionStats{}
	}
	return c.tcp.AdmissionStats()
}

// Forensics pools every user's transition journal (ClusterConfig.
// JournalCap must be set) and localizes the fault after a detection:
// which operation slot was forged, which users sit on which branch.
func (c *Cluster) Forensics() *ForensicsReport {
	var js []*forensics.Journal
	for _, cl := range c.clients {
		if j := cl.Journal(); j != nil {
			js = append(js, j)
		}
	}
	if len(js) == 0 {
		return nil
	}
	return forensics.Locate(js)
}

// GossipWitnesses runs one push-pull gossip round on every witness
// node. With a full mesh, one round converges the witnesses' views —
// a fork split across disjoint witness subsets surfaces as evidence
// here.
func (c *Cluster) GossipWitnesses() error {
	var first error
	for _, n := range c.witnesses {
		if err := n.GossipOnce(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WitnessEvidence returns the merged, verified evidence bundles held
// by all witness nodes (empty when the server has been honest).
func (c *Cluster) WitnessEvidence() []*forensics.Evidence {
	var all []*forensics.Evidence
	for _, n := range c.witnesses {
		all = forensics.MergeEvidence(all, n.Evidence()...)
	}
	return all
}

// CommitHead forces a commitment at the server's current head and
// waits for delivery — used before a witness check when the cadence
// has not fired yet.
func (c *Cluster) CommitHead() {
	if c.publisher == nil {
		return
	}
	c.publisher.CommitNow(c.srv.DB().Head())
	c.publisher.Flush()
}

// VerifyWitnesses runs user i's witness cross-check immediately
// (Protocol III clients have no sync round to piggyback on).
func (c *Cluster) VerifyWitnesses(i int) error {
	return c.clients[i].VerifyWitnesses()
}

// ServerAddr returns the TCP server address (Network clusters only).
func (c *Cluster) ServerAddr() string {
	if c.tcp == nil {
		return ""
	}
	return c.tcp.Addr()
}

// HubAddr returns the TCP hub address (Network clusters only).
func (c *Cluster) HubAddr() string {
	if c.tcpHub == nil {
		return ""
	}
	return c.tcpHub.Addr()
}

// Close shuts down every client, the hub and the server.
func (c *Cluster) Close() {
	for _, cl := range c.clients {
		cl.Close()
	}
	if c.hub != nil {
		c.hub.Close()
	}
	if c.tcpHub != nil {
		c.tcpHub.Close()
	}
	if c.tcp != nil {
		c.tcp.Close()
	}
}

// Repo is the verified CVS interface of one user: all of cvs.Client's
// methods (Commit, Checkout, CheckoutRev, CheckoutTag, Status, Log,
// List, Tag) plus detection introspection.
type Repo struct {
	*cvs.Client
	driver *driver.Client
}

// User returns the repo's protocol identity.
func (r *Repo) User() UserID { return r.driver.ID() }

// Workspace opens (or reopens) a verified working copy rooted at dir:
// local files with tracked base revisions, `status`, three-way-merge
// `update`, and atomic commits with up-to-date checks.
func (r *Repo) Workspace(dir string) (*Workspace, error) {
	return workspace.Open(dir, r.Client)
}

// Err returns the recorded detection error, if any.
func (r *Repo) Err() error { return r.driver.Err() }

// WaitIdle blocks until no synchronization round is in flight.
func (r *Repo) WaitIdle(timeout time.Duration) error { return r.driver.WaitIdle(timeout) }
