// Package trustedcvs is a from-scratch implementation of "Trusted
// CVS" (Venkitasubramaniam, Machanavajjhala, Gehrke, Martin — ICDE
// 2006): a CVS-style multi-user version control system hosted on an
// UNTRUSTED server, in which the users themselves can detect any
// integrity or availability violation — tampered data, dropped or
// replayed updates, and forked ("partitioned") histories.
//
// The server keeps the repository in a Merkle B+-tree and must prove
// every operation with a verification object; three protocols from the
// paper layer fork detection on top:
//
//   - Protocol I: every database state is signed by the user that
//     produced it; users synchronize counters over a broadcast channel
//     every k operations. 3 messages/op, needs a PKI.
//   - Protocol II: no per-operation signatures; each user keeps two
//     XOR registers over user-tagged state hashes, and the sync check
//     accepts iff all states form a single chain (Lemma 4.1).
//     2 messages/op, no PKI.
//   - Protocol III: no user-to-user communication at all; users store
//     signed per-epoch register summaries on the server and a rotating
//     auditor checks each epoch two epochs later. Requires every user
//     to perform two operations per epoch; detects within two epochs.
//
// Quick start (in-process; see examples/ and cmd/ for networked use):
//
//	cluster, _ := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
//		Protocol: trustedcvs.ProtocolII, Users: 3, SyncEvery: 16,
//	})
//	defer cluster.Close()
//	alice := cluster.Repo(0, "alice")
//	alice.Commit(map[string][]byte{"README": []byte("hi\n")}, "import", nil)
//	bob := cluster.Repo(1, "bob")
//	files, _ := bob.Checkout("README") // verified end to end
//	_ = files
//
// Every error of type *DetectionError means the server has provably
// deviated; per the paper, the detecting user stops using the server
// and alerts the others out of band.
//
// See DESIGN.md for the architecture and the paper-to-package map, and
// EXPERIMENTS.md for the reproduced evaluation (experiments E1–E8).
package trustedcvs
